package svc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/stats"
)

// fakeClock is a mutex-guarded manual clock injected via breaker.now,
// so the state machine is tested against exact cooldown boundaries
// instead of wall-clock sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testBreaker builds a breaker on a fake clock with a fixed seed.
func testBreaker(t *testing.T, cfg BreakerConfig, seed uint64) (*breaker, *fakeClock, *BreakerStats) {
	t.Helper()
	st := &BreakerStats{}
	b := newBreaker(cfg, stats.NewRNG(seed), st)
	if b == nil {
		t.Fatalf("newBreaker(%+v) disabled", cfg)
	}
	clk := newFakeClock()
	b.now = clk.now
	return b, clk, st
}

// mustAdmit asserts one admit outcome.
func mustAdmit(t *testing.T, b *breaker, wantProbe, wantOK bool, msg string) {
	t.Helper()
	probe, ok := b.admit()
	if probe != wantProbe || ok != wantOK {
		t.Fatalf("%s: admit() = (probe %v, ok %v), want (%v, %v)", msg, probe, ok, wantProbe, wantOK)
	}
}

func TestBreakerOpensAfterThresholdConsecutiveFailures(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, Cooldown: time.Second, Jitter: 0.2}
	b, clk, st := testBreaker(t, cfg, 1)

	for i := 0; i < 2; i++ {
		mustAdmit(t, b, false, true, "while closed")
		b.record(false, false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after %d failures = %v, want closed", 2, got)
	}
	mustAdmit(t, b, false, true, "one below threshold")
	b.record(false, false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if !b.blocked() {
		t.Fatal("open breaker not blocked()")
	}
	// The jittered cooldown must lie in [Cooldown, Cooldown*(1+Jitter)).
	window := b.openUntil.Sub(clk.now())
	if window < cfg.Cooldown || window >= time.Duration(float64(cfg.Cooldown)*(1+cfg.Jitter)) {
		t.Fatalf("cooldown %v outside [%v, %v)", window, cfg.Cooldown, time.Duration(float64(cfg.Cooldown)*(1+cfg.Jitter)))
	}
	mustAdmit(t, b, false, false, "while open")
	if st.Opens.Load() != 1 || st.FastFails.Load() != 1 {
		t.Fatalf("opens=%d fastfails=%d, want 1 and 1", st.Opens.Load(), st.FastFails.Load())
	}
}

// TestBreakerNoFlapOnAlternatingOutcomes pins the consecutive-failure
// requirement: a node that fails every other call never accumulates a
// run, so the breaker must not flap open on mixed evidence.
func TestBreakerNoFlapOnAlternatingOutcomes(t *testing.T) {
	b, _, st := testBreaker(t, BreakerConfig{Threshold: 2}, 1)
	for i := 0; i < 50; i++ {
		mustAdmit(t, b, false, true, fmt.Sprintf("alternating round %d", i))
		b.record(false, i%2 == 0)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after alternating outcomes = %v, want closed", got)
	}
	if st.Opens.Load() != 0 {
		t.Fatalf("opens = %d, want 0", st.Opens.Load())
	}
}

func TestBreakerHalfOpenProbeQuota(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, Probes: 2}
	b, clk, st := testBreaker(t, cfg, 2)
	mustAdmit(t, b, false, true, "closed")
	b.record(false, false) // opens
	mustAdmit(t, b, false, false, "during cooldown")

	// Past the worst-case jittered cooldown the breaker half-opens and
	// admits exactly Probes concurrent probes.
	clk.advance(2 * cfg.Cooldown)
	mustAdmit(t, b, true, true, "first probe")
	mustAdmit(t, b, true, true, "second probe")
	mustAdmit(t, b, false, false, "past probe quota")
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// The first probe success closes the breaker.
	b.record(true, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if st.Closes.Load() != 1 {
		t.Fatalf("closes = %d, want 1", st.Closes.Load())
	}
	// The other probe's late success is a no-op on a closed breaker.
	b.record(true, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after late probe = %v, want closed", got)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second}
	b, clk, st := testBreaker(t, cfg, 3)
	mustAdmit(t, b, false, true, "closed")
	b.record(false, false)
	clk.advance(2 * cfg.Cooldown)
	mustAdmit(t, b, true, true, "probe")
	b.record(true, false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if !b.blocked() {
		t.Fatal("reopened breaker not blocked(): failed probe must start a fresh cooldown")
	}
	if st.Opens.Load() != 2 {
		t.Fatalf("opens = %d, want 2 (initial trip + reopen)", st.Opens.Load())
	}
}

// TestBreakerForgetReleasesProbeNeutrally pins the hedge-loser
// contract: a cancelled call proves nothing, so forget must restore
// the probe slot without moving the state machine either way.
func TestBreakerForgetReleasesProbeNeutrally(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, Probes: 1}
	b, clk, _ := testBreaker(t, cfg, 4)
	mustAdmit(t, b, false, true, "closed")
	b.record(false, false)
	clk.advance(2 * cfg.Cooldown)
	mustAdmit(t, b, true, true, "probe")
	mustAdmit(t, b, false, false, "quota spent")
	b.forget(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after forget = %v, want half-open (no judgement)", got)
	}
	mustAdmit(t, b, true, true, "slot restored after forget")
	// forget of a non-probe call is a no-op on the quota.
	b.forget(false)
	mustAdmit(t, b, false, false, "quota still spent")
}

// TestBreakerSeedReplayDeterminism drives two breakers with the same
// seed, config, and clock script through the same outcome sequence and
// requires identical admit decisions and cooldown boundaries — the
// property that makes chaos soaks replayable.
func TestBreakerSeedReplayDeterminism(t *testing.T) {
	run := func() (decisions []bool, windows []time.Time) {
		cfg := BreakerConfig{Threshold: 2, Cooldown: 800 * time.Millisecond, Jitter: 0.5, Probes: 1}
		st := &BreakerStats{}
		b := newBreaker(cfg, stats.NewRNG(42), st)
		clk := newFakeClock()
		b.now = clk.now
		// Scripted mix of failures, recoveries, probes, and clock steps.
		for round := 0; round < 40; round++ {
			probe, ok := b.admit()
			decisions = append(decisions, ok)
			if ok {
				b.record(probe, round%5 == 4)
			}
			windows = append(windows, b.openUntil)
			clk.advance(time.Duration(100+round*37) * time.Millisecond)
		}
		return
	}
	d1, w1 := run()
	d2, w2 := run()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("admit decision %d diverged under identical seed: %v vs %v", i, d1[i], d2[i])
		}
		if !w1[i].Equal(w2[i]) {
			t.Fatalf("cooldown boundary %d diverged under identical seed: %v vs %v", i, w1[i], w2[i])
		}
	}
}

// TestBreakerNilSafety: a nil breaker (disabled config) admits
// everything and ignores every outcome.
func TestBreakerNilSafety(t *testing.T) {
	var b *breaker
	if b != newBreaker(BreakerConfig{}, stats.NewRNG(1), nil) {
		t.Fatal("zero config must disable the breaker")
	}
	probe, ok := b.admit()
	if probe || !ok {
		t.Fatalf("nil admit = (%v, %v), want (false, true)", probe, ok)
	}
	b.record(false, false)
	b.forget(true)
	if b.blocked() {
		t.Fatal("nil breaker blocked")
	}
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker state not closed")
	}
}

package svc

import (
	"context"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/model"
)

// Client is the shell-style client for a networked NameNode: typed
// wrappers over the nn.* RPCs, one multiplexed redialing connection
// underneath. Errors arrive rehydrated, so errors.Is against the dfs
// sentinels and dfs.IsTransient behave exactly as in-process.
type Client struct {
	peer *peerConn
}

// Dial creates a client for the NameNode at addr. name is this
// client's endpoint name for the fault hook ("shell" is conventional);
// faults may be nil. The connection is established lazily on first
// call.
func Dial(addr, name string, faults TransportFaults) *Client {
	return &Client{peer: newPeerConn(addr, name, "namenode", faults)}
}

// Close tears down the connection; the client may be reused (calls
// redial).
func (c *Client) Close() { c.peer.close() }

// CopyFromLocal stores data as a new file, with the ADAPT distributor
// when useAdapt is set, returning the metadata and the write report.
func (c *Client) CopyFromLocal(ctx context.Context, name string, data []byte, useAdapt bool) (*dfs.FileMeta, dfs.WriteReport, error) {
	var res copyResult
	err := c.peer.call(ctx, "nn.copyFromLocal", copyParams{Name: name, Data: data, Adapt: useAdapt}, &res)
	if err != nil {
		return nil, dfs.WriteReport{}, err
	}
	return res.Meta, res.Report, nil
}

// Cp copies src to dst, placing the copy with the selected
// distributor.
func (c *Client) Cp(ctx context.Context, src, dst string, useAdapt bool) (*dfs.FileMeta, error) {
	var fm dfs.FileMeta
	if err := c.peer.call(ctx, "nn.cp", cpParams{Src: src, Dst: dst, Adapt: useAdapt}, &fm); err != nil {
		return nil, err
	}
	return &fm, nil
}

// ReadFile reads a whole file back through the NameNode's failover
// read path.
func (c *Client) ReadFile(ctx context.Context, name string) ([]byte, error) {
	var res readResult
	if err := c.peer.call(ctx, "nn.read", nameParams{Name: name}, &res); err != nil {
		return nil, err
	}
	return res.Data, nil
}

// Stat returns a file's metadata.
func (c *Client) Stat(ctx context.Context, name string) (*dfs.FileMeta, error) {
	var fm dfs.FileMeta
	if err := c.peer.call(ctx, "nn.stat", nameParams{Name: name}, &fm); err != nil {
		return nil, err
	}
	return &fm, nil
}

// List returns all file names.
func (c *Client) List(ctx context.Context) ([]string, error) {
	var res listResult
	if err := c.peer.call(ctx, "nn.list", nil, &res); err != nil {
		return nil, err
	}
	return res.Files, nil
}

// Delete removes a file.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.peer.call(ctx, "nn.delete", nameParams{Name: name}, nil)
}

// Adapt reshapes an existing file's placement with the
// availability-aware distributor (the paper's new shell command),
// returning how many replicas moved.
func (c *Client) Adapt(ctx context.Context, name string) (int, error) {
	var res movedResult
	if err := c.peer.call(ctx, "nn.adapt", nameParams{Name: name}, &res); err != nil {
		return 0, err
	}
	return res.Moved, nil
}

// Rebalance reshapes an existing file's placement with the stock
// random distributor (the HDFS-rebalance analogue).
func (c *Client) Rebalance(ctx context.Context, name string) (int, error) {
	var res movedResult
	if err := c.peer.call(ctx, "nn.rebalance", nameParams{Name: name}, &res); err != nil {
		return 0, err
	}
	return res.Moved, nil
}

// BlockDistribution returns the per-node replica counts for a file.
func (c *Client) BlockDistribution(ctx context.Context, name string) ([]int, error) {
	var res distResult
	if err := c.peer.call(ctx, "nn.dist", nameParams{Name: name}, &res); err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// MaintainReplication re-replicates a file's under-replicated blocks.
func (c *Client) MaintainReplication(ctx context.Context, name string, useAdapt bool) (dfs.ReplicationReport, error) {
	var rep dfs.ReplicationReport
	err := c.peer.call(ctx, "nn.maintain", maintainParams{Name: name, Adapt: useAdapt}, &rep)
	return rep, err
}

// Estimates returns the NameNode's current per-node (λ, μ) estimates,
// as folded from heartbeats.
func (c *Client) Estimates(ctx context.Context) (map[cluster.NodeID]model.Availability, error) {
	var res estimatesResult
	if err := c.peer.call(ctx, "nn.estimates", nil, &res); err != nil {
		return nil, err
	}
	return res.Estimates, nil
}

// CheckConsistency asks the NameNode to verify every live replica's
// bits against block checksums.
func (c *Client) CheckConsistency(ctx context.Context) error {
	return c.peer.call(ctx, "nn.consistency", nil, nil)
}

// Fsck returns the NameNode's replication-health survey: per-block
// live-replica counts against each file's target, by the NameNode's
// current liveness belief.
func (c *Client) Fsck(ctx context.Context) (dfs.HealthReport, error) {
	var rep dfs.HealthReport
	err := c.peer.call(ctx, "nn.fsck", nil, &rep)
	return rep, err
}

// ScrubOrphans asks the NameNode to delete stored replicas no file
// references — residue of torn pipeline writes whose cleanup could
// not reach a partitioned holder. Returns how many were removed.
func (c *Client) ScrubOrphans(ctx context.Context) (int, error) {
	var res scrubResult
	if err := c.peer.call(ctx, "nn.scrub", nil, &res); err != nil {
		return 0, err
	}
	return res.Removed, nil
}

package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is one multiplexed client connection: concurrent Calls are
// correlated by request id, so a slow block fetch does not serialize
// behind a heartbeat. A Conn that observes a transport error dies and
// fails all pending calls with ErrConnClosed; the owning peer redials
// on the next call.
type Conn struct {
	local  string // our endpoint name, sent as request.From
	peer   string // the peer's endpoint name, for the fault hook
	faults TransportFaults
	nc     net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *response
	dead    bool
	cause   error
}

// dialConn opens a TCP connection and starts its reader. The fault
// hook is consulted first, so a partitioned endpoint cannot even
// dial.
func dialConn(ctx context.Context, addr, local, peer string, faults TransportFaults) (*Conn, error) {
	if faults != nil {
		if err := faults.FailMessage(local, peer); err != nil {
			return nil, fmt.Errorf("svc: dial %s: %w", addr, err)
		}
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("svc: dial %s: %w", addr, err)
	}
	c := &Conn{
		local:   local,
		peer:    peer,
		faults:  faults,
		nc:      nc,
		pending: make(map[uint64]chan *response),
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes response frames to their pending calls until the
// connection dies.
func (c *Conn) readLoop() {
	for {
		var resp response
		if err := readFrame(c.nc, &resp); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			r := resp
			ch <- &r
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *Conn) fail(cause error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.cause = cause
	stranded := c.pending
	c.pending = make(map[uint64]chan *response)
	c.mu.Unlock()
	_ = c.nc.Close()
	for _, ch := range stranded {
		close(ch)
	}
}

// Close tears the connection down; pending calls fail with
// ErrConnClosed.
func (c *Conn) Close() {
	c.fail(ErrConnClosed)
}

// Dead reports whether the connection has failed.
func (c *Conn) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Call performs one RPC: params are marshalled, the deadline budget
// from ctx rides in the envelope, and the response is unmarshalled
// into result (ignored when result is nil). Errors from the peer are
// rehydrated as RemoteError.
func (c *Conn) Call(ctx context.Context, method string, params, result any) error {
	if c.faults != nil {
		if err := c.faults.FailMessage(c.local, c.peer); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return fmt.Errorf("svc: call %s: %w", method, err)
		}
		if d := c.faults.MessageDelay(c.local, c.peer); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("svc: call %s: %w", method, ctx.Err())
			}
		}
	}

	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("svc: call %s: encode params: %w", method, err)
		}
		raw = b
	}

	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.dead {
		cause := c.cause
		c.mu.Unlock()
		return fmt.Errorf("svc: call %s: %w", method, cause)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	req := request{
		ID:     id,
		From:   c.local,
		Method: method,
		//lint:ignore determinism encoding the ctx deadline as a wire budget needs the wall clock; simulations drive the transport with deadline-free contexts
		DeadlineMS: deadlineBudget(ctx, time.Now()),
		Params:     raw,
	}
	c.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		_ = c.nc.SetWriteDeadline(dl)
	} else {
		_ = c.nc.SetWriteDeadline(time.Time{})
	}
	err := writeFrame(c.nc, req)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("svc: call %s: %w", method, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return fmt.Errorf("svc: call %s: %w", method, ErrConnClosed)
		}
		if err := decodeError(resp); err != nil {
			return fmt.Errorf("svc: call %s: %w", method, err)
		}
		if result != nil {
			if len(resp.Result) == 0 {
				return fmt.Errorf("%w: call %s returned no result", ErrBadFrame, method)
			}
			if err := json.Unmarshal(resp.Result, result); err != nil {
				return fmt.Errorf("%w: call %s result: %v", ErrBadFrame, method, err)
			}
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("svc: call %s: %w", method, ctx.Err())
	}
}

// peerConn is a redialing wrapper: it lazily dials, reuses a live
// Conn across calls, and drops a dead one so the next call redials.
// Safe for concurrent use.
type peerConn struct {
	addr   string
	local  string
	peer   string
	faults TransportFaults

	mu   sync.Mutex
	conn *Conn
}

func newPeerConn(addr, local, peer string, faults TransportFaults) *peerConn {
	return &peerConn{addr: addr, local: local, peer: peer, faults: faults}
}

func (p *peerConn) get(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil && !p.conn.Dead() {
		return p.conn, nil
	}
	c, err := dialConn(ctx, p.addr, p.local, p.peer, p.faults)
	if err != nil {
		return nil, err
	}
	p.conn = c
	return c, nil
}

// call dials (or reuses) the connection and performs one RPC.
func (p *peerConn) call(ctx context.Context, method string, params, result any) error {
	c, err := p.get(ctx)
	if err != nil {
		return err
	}
	return c.Call(ctx, method, params, result)
}

// close tears down the cached connection.
func (p *peerConn) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

package svc

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestCrashRecoverySoak is the PR's headline: a durable NameNode runs
// a mixed create/delete workload while seeded M/G/1 churn flips the
// DataNodes, is SIGKILL'd mid-workload, restarts from its WAL on a
// fresh port, and must then prove three things without operator help:
//
//  1. No acknowledged write is lost — every file acked before or
//     after the crash reads back byte-for-byte, deletes stay deleted.
//  2. Recovery is bit-deterministic — the restarted namespace hashes
//     to the pre-crash fingerprint, and two independent replays of
//     the directory agree.
//  3. Re-replication is autonomous — after the failure detector
//     declares a replica-holding node dead, one repair scan returns
//     the namespace to full replication on the survivors.
func TestCrashRecoverySoak(t *testing.T) {
	dir := t.TempDir()
	const nodes = 5
	cfg := NameNodeConfig{BlockSize: 512, Replication: 2, WALDir: dir, SnapshotEvery: 8}

	// Ground truth drives the churn generator; the served cluster is
	// availability-stripped, so liveness and (λ, μ) knowledge reach
	// the NameNode only through heartbeats.
	truth, err := cluster.NewEmulation(cluster.EmulationConfig{
		Nodes:            nodes,
		InterruptedRatio: 0.4,
	}, stats.NewRNG(71))
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := cluster.New(make([]cluster.Node, nodes))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(stripped, stats.NewRNG(72), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	eng, err := chaos.New(chaos.Config{Cluster: truth, Target: lc, Observer: lc}, stats.NewRNG(73))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// acked tracks exactly what the NameNode acknowledged: a write
	// enters on a nil CopyFromLocal error, a delete removes on a nil
	// Delete error. The recovery contract is stated over this map.
	acked := map[string][]byte{}
	cl := lc.Client("soak")
	defer func() { cl.Close() }()

	const rounds, crashAt = 24, 12
	for i := 0; i < rounds; i++ {
		if _, err := eng.Run(15); err != nil {
			t.Fatal(err)
		}
		if err := lc.FlushHeartbeats(ctx); err != nil {
			t.Fatal(err)
		}

		name := fmt.Sprintf("file-%03d", i)
		data := durablePayload(i, 1024+i*113)
		if _, _, err := cl.CopyFromLocal(ctx, name, data, i%2 == 0); err == nil {
			acked[name] = data
		} else if !dfs.IsTransient(err) {
			t.Fatalf("round %d: write failed permanently: %v", i, err)
		}
		if i%6 == 5 {
			old := fmt.Sprintf("file-%03d", i-4)
			if _, ok := acked[old]; ok {
				if err := cl.Delete(ctx, old); err == nil {
					delete(acked, old)
				}
			}
		}

		if i == crashAt {
			preFP := lc.NN.NamespaceFingerprint()
			lc.CrashNameNode()
			cl.Close()
			if err := lc.RestartNameNode(stripped, stats.NewRNG(74), cfg); err != nil {
				t.Fatalf("restart from WAL: %v", err)
			}
			if got := lc.NN.NamespaceFingerprint(); got != preFP {
				t.Fatalf("recovery diverged from the crashed namespace:\n pre %s\npost %s", preFP, got)
			}
			cl = lc.Client("soak-reborn")
			if err := lc.FlushHeartbeats(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Quiesce the churn, bring every node up, and let the NameNode
	// hear about it.
	if err := eng.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}

	// (1) No acknowledged write lost — names and bytes both exact.
	names := make([]string, 0, len(acked))
	for name := range acked {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("soak acknowledged no writes; the scenario proved nothing")
	}
	listed, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(listed)
	if len(listed) != len(names) {
		t.Fatalf("namespace holds %d files, %d were acked:\n got %v\nwant %v", len(listed), len(names), listed, names)
	}
	for i := range names {
		if listed[i] != names[i] {
			t.Fatalf("namespace diverged at %q vs %q", listed[i], names[i])
		}
	}
	for _, name := range names {
		got, err := cl.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("acked file %q unreadable after recovery: %v", name, err)
		}
		if !bytes.Equal(got, acked[name]) {
			t.Fatalf("acked file %q corrupted after recovery", name)
		}
	}

	// Degraded writes from the churn window heal first, so the later
	// health assertion isolates the dead-node repair.
	lc.NN.RepairScan(RepairConfig{})
	if h := lc.NN.Engine().Health(); !h.Healthy() {
		t.Fatalf("pre-kill repair left %d under-replicated, %d unavailable", h.UnderReplicated, h.Unavailable)
	}

	// (3) Autonomous re-replication: silence a replica holder until
	// the detector declares it dead, then one scan restores full
	// replication on the survivors.
	counts, err := cl.BlockDistribution(ctx, names[len(names)-1])
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.NodeID(0)
	for id, n := range counts {
		if n > 0 {
			victim = cluster.NodeID(id)
			break
		}
	}
	now := time.Now()
	backdateBeat(lc.NN, victim, now.Add(-time.Minute))
	lc.NN.TickDetector(DetectorConfig{}, now)
	if lc.NN.stores[victim].Up() {
		t.Fatalf("victim %d not declared dead", victim)
	}
	lc.NN.RepairScan(RepairConfig{})
	if h := lc.NN.Engine().Health(); !h.Healthy() {
		t.Fatalf("autonomous repair left %d under-replicated, %d unavailable", h.UnderReplicated, h.Unavailable)
	}

	// (2) Bit-determinism: the WAL directory replays to the same
	// fingerprint twice, and matches the live namespace (every repair
	// relocation was journaled before it was applied).
	liveFP := lc.NN.NamespaceFingerprint()
	files1, err := RecoverNamespace(dir)
	if err != nil {
		t.Fatal(err)
	}
	files2, err := RecoverNamespace(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := dfs.FingerprintFiles(files1), dfs.FingerprintFiles(files2)
	if fp1 != fp2 {
		t.Fatalf("WAL replay not deterministic:\n%s\n%s", fp1, fp2)
	}
	if fp1 != liveFP {
		t.Fatalf("replayed fingerprint %s != live %s", fp1, liveFP)
	}
}

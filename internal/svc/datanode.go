package svc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
)

// heartbeatParams is the wire form of one heartbeat. Observation
// fields are cumulative totals since the DataNode started, not
// deltas: a lost beat loses nothing, because the next beat carries
// everything, and the NameNode folds only the difference from the
// last total it saw. Seq orders beats so a delayed duplicate cannot
// rewind the estimator.
type heartbeatParams struct {
	Node          cluster.NodeID `json:"node"`
	Epoch         uint64         `json:"epoch"` // DataNode incarnation marker
	Seq           uint64         `json:"seq"`
	Uptime        float64        `json:"uptime"`        // cumulative observed uptime, seconds
	Interruptions int64          `json:"interruptions"` // cumulative interruption count
	Downtime      float64        `json:"downtime"`      // cumulative downtime, seconds
}

// epochCounter disambiguates DataNode incarnations created within the
// same wall-clock instant (in-process restarts in tests).
var epochCounter atomic.Uint64

// newEpoch mints an incarnation marker: wall-clock based so a
// restarted process (fresh counter) still differs from its previous
// life, plus a counter so same-process restarts differ too.
func newEpoch() uint64 {
	return uint64(time.Now().UnixNano())<<8 | (epochCounter.Add(1) & 0xff)
}

// endpointName returns the transport endpoint name for a DataNode,
// shared by the server side, the NameNode's proxies, and the chaos
// partition keys.
func endpointName(id cluster.NodeID) string {
	return fmt.Sprintf("datanode-%d", id)
}

// DataNodeServer is one networked DataNode: a dfs.DataNode behind a
// frame server, plus the availability recorder that accumulates the
// node's own interruption observations and ships them to the NameNode
// as heartbeats — the paper's "slave daemons report availability
// traces" loop.
type DataNodeServer struct {
	id     cluster.NodeID
	dn     *dfs.DataNode
	srv    *Server
	faults TransportFaults
	nn     *peerConn

	epoch uint64 // this incarnation's marker, fixed at construction

	mu            sync.Mutex
	seq           uint64
	uptime        float64
	interruptions int64
	downtime      float64

	loopStop chan struct{}
	loopDone chan struct{}
}

// NewDataNodeServer creates a DataNode service for node id. faults
// may be nil. Call ConnectNameNode before heartbeating (the NameNode
// binds after its DataNodes, so the address arrives late).
func NewDataNodeServer(id cluster.NodeID, faults TransportFaults) *DataNodeServer {
	d := &DataNodeServer{
		id:     id,
		dn:     dfs.NewDataNode(id),
		faults: faults,
		epoch:  newEpoch(),
	}
	d.srv = NewServer(endpointName(id), faults, d.handle)
	d.srv.SetDataHandler(d.serveData)
	return d
}

// ConnectNameNode points the heartbeat channel at the NameNode. The
// connection itself is established lazily on the first beat. Calling
// it again (a restarted NameNode at a new address) closes the old
// channel and redials the new one; an in-flight heartbeat on the old
// channel just fails transiently, which loses nothing.
func (d *DataNodeServer) ConnectNameNode(nnAddr string) {
	next := newPeerConn(nnAddr, endpointName(d.id), "namenode", d.faults)
	d.mu.Lock()
	old := d.nn
	d.nn = next
	d.mu.Unlock()
	if old != nil {
		old.close()
	}
}

// peer returns the current NameNode channel (nil before the first
// ConnectNameNode).
func (d *DataNodeServer) peer() *peerConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nn
}

// SetAdmission installs admission control on the block service: JSON
// RPCs and v2 streams compete for the same budget. Call before Listen.
func (d *DataNodeServer) SetAdmission(cfg AdmissionConfig) { d.srv.SetAdmission(cfg) }

// Admission exposes the controller (nil when disabled).
func (d *DataNodeServer) Admission() *admission { return d.srv.Admission() }

// Listen binds the block service (use "127.0.0.1:0" for tests).
func (d *DataNodeServer) Listen(addr string) error {
	return d.srv.Listen(addr)
}

// Addr returns the bound block-service address.
func (d *DataNodeServer) Addr() string { return d.srv.Addr() }

// Node exposes the underlying dfs.DataNode (fault injection, direct
// inspection in tests).
func (d *DataNodeServer) Node() *dfs.DataNode { return d.dn }

func (d *DataNodeServer) handle(ctx context.Context, from, method string, params []byte) (any, error) {
	switch method {
	case "dn.put":
		var p putParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := d.dn.Put(p.Block, p.Data); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "dn.get":
		var p getParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, err := d.dn.Get(p.Block)
		if err != nil {
			return nil, err
		}
		return getResult{Data: data}, nil
	case "dn.delete":
		var p getParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		d.dn.Delete(p.Block)
		return struct{}{}, nil
	case "dn.stored":
		var p getParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		data, ok := d.dn.StoredData(p.Block)
		return storedResult{Data: data, OK: ok}, nil
	case "dn.blocks":
		return blocksResult{Blocks: d.dn.StoredBlocks()}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// ObserveUptime accrues d seconds of observed uptime. The chaos
// engine's observer routing calls this in virtual time; a wall-clock
// heartbeat loop calls it with real elapsed time.
func (d *DataNodeServer) ObserveUptime(sec float64) error {
	if sec < 0 {
		return fmt.Errorf("svc: negative uptime %v: %w", sec, ErrBadObservation)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.uptime += sec
	return nil
}

// ObserveInterruption accrues one interruption with the given
// downtime in seconds.
func (d *DataNodeServer) ObserveInterruption(downtimeSec float64) error {
	if downtimeSec < 0 {
		return fmt.Errorf("svc: negative downtime %v: %w", downtimeSec, ErrBadObservation)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.interruptions++
	d.downtime += downtimeSec
	return nil
}

// FlushHeartbeat sends one heartbeat carrying the cumulative
// observation totals to the NameNode.
func (d *DataNodeServer) FlushHeartbeat(ctx context.Context) error {
	d.mu.Lock()
	nn := d.nn
	if nn == nil {
		d.mu.Unlock()
		return fmt.Errorf("svc: heartbeat from %s: namenode not connected: %w", endpointName(d.id), ErrConnClosed)
	}
	d.seq++
	hb := heartbeatParams{
		Node:          d.id,
		Epoch:         d.epoch,
		Seq:           d.seq,
		Uptime:        d.uptime,
		Interruptions: d.interruptions,
		Downtime:      d.downtime,
	}
	d.mu.Unlock()
	if err := nn.call(ctx, "nn.heartbeat", hb, nil); err != nil {
		return fmt.Errorf("svc: heartbeat from %s: %w", endpointName(d.id), err)
	}
	return nil
}

// StartHeartbeats begins a wall-clock heartbeat loop. When
// accrueWallUptime is set, each tick also records the real elapsed
// time as observed uptime (a deployment posture); tests that drive
// observations in virtual time leave it off. Safe to call once.
func (d *DataNodeServer) StartHeartbeats(interval time.Duration, accrueWallUptime bool) {
	d.loopStop = make(chan struct{})
	d.loopDone = make(chan struct{})
	loopCtx, loopCancel := context.WithCancel(context.Background())
	go func() {
		// Stop closes loopStop; cancelling the loop context unblocks a
		// beat that is mid-flight against an unresponsive NameNode, so
		// Stop never waits out the per-beat timeout.
		<-d.loopStop
		loopCancel()
	}()
	go func() {
		defer close(d.loopDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		last := time.Now()
		for {
			select {
			case <-d.loopStop:
				return
			case now := <-t.C:
				if accrueWallUptime {
					_ = d.ObserveUptime(now.Sub(last).Seconds())
					last = now
				}
				ctx, cancel := context.WithTimeout(loopCtx, interval)
				_ = d.FlushHeartbeat(ctx) // transient loss is the design point: totals carry over
				cancel()
			}
		}
	}()
}

// Stop gracefully shuts the DataNode down: the heartbeat loop halts,
// a final heartbeat flushes the last observations (best-effort,
// bounded by ctx), in-flight block RPCs drain, and connections close.
func (d *DataNodeServer) Stop(ctx context.Context) error {
	if d.loopStop != nil {
		close(d.loopStop)
		<-d.loopDone
		d.loopStop = nil
	}
	var flushErr error
	if d.peer() != nil {
		flushErr = d.FlushHeartbeat(ctx)
	}
	err := d.srv.Shutdown(ctx)
	if nn := d.peer(); nn != nil {
		nn.close()
	}
	if err != nil {
		return err
	}
	if flushErr != nil && ctx.Err() != nil {
		return fmt.Errorf("svc: stop %s: %w", endpointName(d.id), ctx.Err())
	}
	return nil
}

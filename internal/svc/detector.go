package svc

import (
	"sort"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
)

// NodeState is the failure detector's belief about one DataNode.
type NodeState int

// Detector states. A node is Alive while heartbeats arrive on time,
// Suspect once a beat is overdue (transient loss — the design point
// of cumulative-total heartbeats), and Dead once the silence exceeds
// the dead deadline, at which point the node's store is marked down
// and the repair scheduler is kicked. Any later heartbeat revives the
// node straight to Alive.
const (
	NodeAlive NodeState = iota
	NodeSuspect
	NodeDead
)

func (st NodeState) String() string {
	switch st {
	case NodeAlive:
		return "alive"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	default:
		return "unknown"
	}
}

// DetectorConfig tunes the heartbeat failure detector. Zero values
// take the defaults noted per field.
type DetectorConfig struct {
	// SuspectAfter is the heartbeat age promoting Alive → Suspect
	// (default 3s; set it a few beat intervals out).
	SuspectAfter time.Duration
	// DeadAfter is the age promoting → Dead (default 10s). Must
	// exceed SuspectAfter.
	DeadAfter time.Duration
	// Interval is the check cadence (default 1s).
	Interval time.Duration
}

func (cfg *DetectorConfig) defaults() {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * time.Second
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 10 * time.Second
		if cfg.DeadAfter <= cfg.SuspectAfter {
			cfg.DeadAfter = 3 * cfg.SuspectAfter
		}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
}

// StartFailureDetector begins promoting silent DataNodes
// Alive → Suspect → Dead on heartbeat age. Nodes that have never
// heartbeated are not judged (the cluster may still be booting).
// Call at most once; Shutdown/Crash stops the loop.
func (s *NameNodeServer) StartFailureDetector(cfg DetectorConfig) {
	cfg.defaults()
	s.loops.Add(1)
	go func() {
		defer s.loops.Done()
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case now := <-t.C:
				s.TickDetector(cfg, now)
			}
		}
	}()
}

// TickDetector runs one detector sweep at the given instant —
// exported so tests can drive promotions without waiting out wall
// clocks.
func (s *NameNodeServer) TickDetector(cfg DetectorConfig, now time.Time) {
	cfg.defaults()
	var died []cluster.NodeID
	s.hbMu.Lock()
	ids := make([]cluster.NodeID, 0, len(s.hb))
	for id := range s.hb {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.hb[id]
		age := now.Sub(st.lastBeat)
		next := NodeAlive
		switch {
		case age >= cfg.DeadAfter:
			next = NodeDead
		case age >= cfg.SuspectAfter:
			next = NodeSuspect
		}
		if next == NodeDead && st.state != NodeDead {
			died = append(died, id)
		}
		st.state = next
	}
	s.hbMu.Unlock()
	for _, id := range died {
		// The belief flip: placements, reads, and fsck all stop
		// counting this node's replicas as live.
		s.stores[id].SetUp(false)
		s.nn.Resilience().NodesDeclaredDead.Add(1)
	}
	if len(died) > 0 {
		s.kickRepair()
	}
}

// DetectorStates returns the current per-node belief for every node
// that has ever heartbeated.
func (s *NameNodeServer) DetectorStates() map[cluster.NodeID]NodeState {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	out := make(map[cluster.NodeID]NodeState, len(s.hb))
	for id, st := range s.hb {
		out[id] = st.state
	}
	return out
}

package svc

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/stats"
)

// backdateBeat rewrites one node's last-heartbeat instant so detector
// tests can age heartbeats without waiting out wall clocks.
func backdateBeat(s *NameNodeServer, id cluster.NodeID, to time.Time) {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	if st, ok := s.hb[id]; ok {
		st.lastBeat = to
	}
}

// TestFailureDetectorPromotesSilentNodes walks one node through
// Alive → Suspect → Dead on heartbeat age and back to Alive on the
// next beat, checking the liveness belief flips with it.
func TestFailureDetectorPromotesSilentNodes(t *testing.T) {
	c, err := cluster.New(make([]cluster.Node, 3))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(61), nil, NameNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := DetectorConfig{SuspectAfter: 3 * time.Second, DeadAfter: 10 * time.Second}

	// Nodes that have never heartbeated are not judged: the cluster
	// may still be booting.
	lc.NN.TickDetector(cfg, time.Now())
	if n := len(lc.NN.DetectorStates()); n != 0 {
		t.Fatalf("judged %d nodes before any heartbeat", n)
	}

	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	lc.NN.TickDetector(cfg, now)
	for id, st := range lc.NN.DetectorStates() {
		if st != NodeAlive {
			t.Fatalf("node %d = %v after fresh beat, want alive", id, st)
		}
	}

	backdateBeat(lc.NN, 2, now.Add(-5*time.Second))
	lc.NN.TickDetector(cfg, now)
	if st := lc.NN.DetectorStates()[2]; st != NodeSuspect {
		t.Fatalf("node 2 = %v after 5s silence, want suspect", st)
	}
	if !lc.NN.stores[2].Up() {
		t.Fatal("suspect node marked down; only dead should flip the belief")
	}

	backdateBeat(lc.NN, 2, now.Add(-30*time.Second))
	lc.NN.TickDetector(cfg, now)
	if st := lc.NN.DetectorStates()[2]; st != NodeDead {
		t.Fatalf("node 2 = %v after 30s silence, want dead", st)
	}
	if lc.NN.stores[2].Up() {
		t.Fatal("dead node still believed up")
	}
	if got := lc.NN.Engine().Resilience().Snapshot().NodesDeclaredDead; got != 1 {
		t.Fatalf("nodes declared dead = %d, want 1", got)
	}
	// Re-ticking an already-dead node must not re-count it.
	lc.NN.TickDetector(cfg, now)
	if got := lc.NN.Engine().Resilience().Snapshot().NodesDeclaredDead; got != 1 {
		t.Fatalf("dead node re-counted: %d", got)
	}

	// Any heartbeat revives straight to Alive, and the belief flips up.
	if err := lc.DNs[2].FlushHeartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if st := lc.NN.DetectorStates()[2]; st != NodeAlive {
		t.Fatalf("node 2 = %v after revival beat, want alive", st)
	}
	if !lc.NN.stores[2].Up() {
		t.Fatal("revived node still believed down")
	}
}

// TestDeadNodeTriggersRepair: declaring a replica-holding node dead
// and running one repair scan must restore every block to full
// replication on the surviving nodes — the availability-aware repair
// path, driven by the detector's belief flip.
func TestDeadNodeTriggersRepair(t *testing.T) {
	c, err := cluster.New(make([]cluster.Node, 4))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(62), nil, NameNodeConfig{BlockSize: 256, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	defer cl.Close()
	if _, _, err := cl.CopyFromLocal(ctx, "f", durablePayload(9, 2048), false); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}
	counts, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.NodeID(-1)
	for id, n := range counts {
		if n > 0 {
			victim = cluster.NodeID(id)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no node holds a replica")
	}

	cfg := DetectorConfig{SuspectAfter: 3 * time.Second, DeadAfter: 10 * time.Second}
	now := time.Now()
	backdateBeat(lc.NN, victim, now.Add(-time.Minute))
	lc.NN.TickDetector(cfg, now)
	if lc.NN.stores[victim].Up() {
		t.Fatalf("victim %d still believed up", victim)
	}
	health := lc.NN.Engine().Health()
	if health.UnderReplicated == 0 {
		t.Fatal("killing a replica holder left nothing under-replicated")
	}

	repaired := lc.NN.RepairScan(RepairConfig{})
	if repaired == 0 {
		t.Fatal("repair scan fixed nothing")
	}
	health = lc.NN.Engine().Health()
	if !health.Healthy() {
		t.Fatalf("post-repair health: %d under-replicated, %d unavailable",
			health.UnderReplicated, health.Unavailable)
	}
	rs := lc.NN.Engine().Resilience().Snapshot()
	if rs.RepairScans < 1 {
		t.Fatalf("repair scans counter = %d, want >= 1", rs.RepairScans)
	}
	if rs.RepairedReplicas < int64(repaired) {
		t.Fatalf("repaired replicas counter = %d < scan total %d", rs.RepairedReplicas, repaired)
	}
}

// TestHeartbeatEpochRebaseline: a restarted DataNode announces a new
// epoch, so its reset sequence numbers and zeroed totals must fold as
// a fresh baseline instead of being rejected forever — the bug this
// PR fixes.
func TestHeartbeatEpochRebaseline(t *testing.T) {
	c, err := cluster.New(make([]cluster.Node, 2))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(63), nil, NameNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First incarnation ships some observations.
	if err := lc.DNs[0].ObserveUptime(50); err != nil {
		t.Fatal(err)
	}
	if err := lc.DNs[0].FlushHeartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lc.DNs[0].FlushHeartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	// The process "restarts": a fresh incarnation of the same node id,
	// epoch new, seq back to 1, totals back to zero.
	fresh := NewDataNodeServer(0, nil)
	fresh.ConnectNameNode(lc.NN.Addr())
	t.Cleanup(func() { fresh.peer().close() })
	if err := fresh.ObserveUptime(5); err != nil {
		t.Fatal(err)
	}
	if err := fresh.FlushHeartbeat(ctx); err != nil {
		t.Fatalf("restarted datanode's first beat rejected: %v", err)
	}
	if err := fresh.FlushHeartbeat(ctx); err != nil {
		t.Fatalf("restarted datanode's second beat rejected: %v", err)
	}

	// Within an epoch the stale/backwards protections still hold.
	if err := lc.NN.foldHeartbeat(heartbeatParams{Node: 1, Epoch: 7, Seq: 5, Uptime: 100}); err != nil {
		t.Fatal(err)
	}
	err = lc.NN.foldHeartbeat(heartbeatParams{Node: 1, Epoch: 7, Seq: 5, Uptime: 120})
	if !errors.Is(err, ErrStaleHeartbeat) {
		t.Fatalf("same-epoch replay accepted: %v", err)
	}
	// A new epoch resets both seq and totals.
	if err := lc.NN.foldHeartbeat(heartbeatParams{Node: 1, Epoch: 9, Seq: 1, Uptime: 10}); err != nil {
		t.Fatalf("new-epoch beat rejected: %v", err)
	}
}

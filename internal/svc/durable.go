package svc

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/wal"
)

// The durable NameNode: every namespace mutation the dfs engine
// publishes is first appended (and fsync'd) to a wal.Log as a
// walRecord, and the namespace is periodically checkpointed into the
// log's snapshot. A restart with the same -wal-dir replays snapshot +
// suffix and reconstructs the exact file table and placement map —
// the HDFS edits-log/fsimage pair, scaled to this reproduction.
//
// Records carry the *complete* per-file state after the mutation
// (full metadata on create, the full block map on relocate), not
// deltas. Replay is therefore an upsert and is idempotent, which lets
// the snapshot cadence capture the namespace image without stopping
// writers: the image is taken *after* reading the log sequence, so
// any record that races into both the image and the replay suffix
// converges to the same state.

// walRecord is the journal's record encoding, one JSON object per WAL
// entry.
type walRecord struct {
	Kind   string          `json:"kind"` // "create" | "delete" | "blocks"
	Name   string          `json:"name"`
	File   *dfs.FileMeta   `json:"file,omitempty"`
	Blocks []dfs.BlockMeta `json:"blocks,omitempty"`
}

// walSnapshot is the checkpoint encoding: the full namespace image,
// files sorted by name.
type walSnapshot struct {
	Files []*dfs.FileMeta `json:"files"`
}

// walJournal adapts a wal.Log to the dfs.Journal write-ahead hook.
// Its methods run under the NameNode's metadata lock and must stay
// callback-free.
type walJournal struct {
	log *wal.Log
}

func (j *walJournal) LogCreate(fm *dfs.FileMeta) error {
	return j.append(walRecord{Kind: "create", Name: fm.Name, File: fm})
}

func (j *walJournal) LogDelete(name string) error {
	return j.append(walRecord{Kind: "delete", Name: name})
}

func (j *walJournal) LogBlocks(name string, blocks []dfs.BlockMeta) error {
	return j.append(walRecord{Kind: "blocks", Name: name, Blocks: blocks})
}

func (j *walJournal) append(r walRecord) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("svc: encode wal record: %w", err)
	}
	if _, err := j.log.Append(buf); err != nil {
		return fmt.Errorf("svc: append wal record: %w", err)
	}
	return nil
}

// openJournal opens (or creates) the WAL directory and rebuilds the
// namespace image it describes: newest snapshot first, then the
// record suffix upserted on top.
func openJournal(dir string) (*walJournal, []*dfs.FileMeta, error) {
	log, err := wal.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("svc: open wal %s: %w", dir, err)
	}
	files, err := replayNamespace(log)
	if err != nil {
		_ = log.Close()
		return nil, nil, err
	}
	return &walJournal{log: log}, files, nil
}

// RecoverNamespace rebuilds the namespace image a WAL directory
// describes without taking ownership of the log — the read-only
// recovery used by fsck-style tooling and the bit-determinism tests.
func RecoverNamespace(dir string) ([]*dfs.FileMeta, error) {
	j, files, err := openJournal(dir)
	if err != nil {
		return nil, err
	}
	if err := j.log.Close(); err != nil {
		return nil, fmt.Errorf("svc: close wal %s: %w", dir, err)
	}
	return files, nil
}

// replayNamespace folds snapshot + records into a sorted file list.
func replayNamespace(log *wal.Log) ([]*dfs.FileMeta, error) {
	table := make(map[string]*dfs.FileMeta)
	if snap, seq := log.Snapshot(); snap != nil {
		var s walSnapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			return nil, fmt.Errorf("svc: decode wal snapshot at seq %d: %w", seq, err)
		}
		for _, fm := range s.Files {
			table[fm.Name] = fm
		}
	}
	err := log.Replay(func(seq uint64, rec []byte) error {
		var r walRecord
		if err := json.Unmarshal(rec, &r); err != nil {
			return fmt.Errorf("svc: decode wal record %d: %w", seq, err)
		}
		switch r.Kind {
		case "create":
			if r.File == nil {
				return fmt.Errorf("svc: wal record %d: create without file: %w", seq, wal.ErrCorrupt)
			}
			table[r.Name] = r.File
		case "delete":
			delete(table, r.Name)
		case "blocks":
			// A blocks record for an absent file is legal: it can sit
			// in the snapshot/suffix overlap window after the file's
			// delete was already folded into the snapshot. Upsert
			// semantics make it a no-op.
			if fm, ok := table[r.Name]; ok {
				fm.Blocks = r.Blocks
			}
		default:
			return fmt.Errorf("svc: wal record %d has unknown kind %q: %w", seq, r.Kind, wal.ErrCorrupt)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	files := make([]*dfs.FileMeta, 0, len(table))
	for _, name := range sortedKeys(table) {
		files = append(files, table[name])
	}
	return files, nil
}

func sortedKeys(m map[string]*dfs.FileMeta) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// durableState is the NameNodeServer's durability bookkeeping.
type durableState struct {
	journal       *walJournal
	snapshotEvery uint64
	snapMu        sync.Mutex // one checkpoint at a time
}

// maybeSnapshot checkpoints the namespace when the replay suffix has
// grown past the configured cadence. Safe (and cheap) to call after
// any mutation; concurrent callers skip rather than queue.
func (s *NameNodeServer) maybeSnapshot() {
	d := &s.durable
	if d.journal == nil {
		return
	}
	if d.journal.log.RecordsSinceSnapshot() < d.snapshotEvery {
		return
	}
	if !d.snapMu.TryLock() {
		return // a checkpoint is already running
	}
	defer d.snapMu.Unlock()
	_ = s.snapshotLocked()
}

// Checkpoint forces a namespace snapshot into the WAL now (testing
// and operational tooling; the cadence path calls snapshotLocked).
func (s *NameNodeServer) Checkpoint() error {
	d := &s.durable
	if d.journal == nil {
		return nil
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked captures and saves one checkpoint. The sequence is
// read *before* the image: records committed during the capture are
// both inside the image and replayed on top, which upsert replay
// makes harmless.
func (s *NameNodeServer) snapshotLocked() error {
	d := &s.durable
	upTo := d.journal.log.Seq()
	img := s.nn.FilesImage()
	state, err := json.Marshal(walSnapshot{Files: img})
	if err != nil {
		return fmt.Errorf("svc: encode wal snapshot: %w", err)
	}
	if err := d.journal.log.SaveSnapshot(state, upTo); err != nil {
		return fmt.Errorf("svc: save wal snapshot: %w", err)
	}
	return nil
}

// WALSeq reports the journal's committed record sequence (0 when the
// NameNode runs without a WAL).
func (s *NameNodeServer) WALSeq() uint64 {
	if s.durable.journal == nil {
		return 0
	}
	return s.durable.journal.log.Seq()
}

// WALSnapshotSeq reports the sequence the newest checkpoint covers.
func (s *NameNodeServer) WALSnapshotSeq() uint64 {
	if s.durable.journal == nil {
		return 0
	}
	return s.durable.journal.log.SnapshotSeq()
}

// Durable reports whether this NameNode journals its namespace.
func (s *NameNodeServer) Durable() bool { return s.durable.journal != nil }

// NamespaceFingerprint hashes the live namespace (see
// dfs.FingerprintFiles) — the recovery tests' bit-determinism probe.
func (s *NameNodeServer) NamespaceFingerprint() string { return s.nn.Fingerprint() }

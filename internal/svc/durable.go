package svc

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/wal"
)

// The durable NameNode: every namespace mutation the dfs engine
// publishes is first appended (and fsync'd) to a wal.Log as a
// walRecord, and the namespace is periodically checkpointed into the
// log's snapshot. A restart with the same -wal-dir replays snapshot +
// suffix and reconstructs the exact file table and placement map —
// the HDFS edits-log/fsimage pair, scaled to this reproduction.
//
// With P namespace shards there are P independent logs (see
// wal.ShardDirs): shard i journals exactly the files that hash to it,
// fsyncs without contending with the other shards, checkpoints on its
// own cadence, and recovers independently. P == 1 keeps the legacy
// flat single-log layout byte-for-byte.
//
// Records carry the *complete* per-file state after the mutation
// (full metadata on create, the full block map on relocate), not
// deltas. Replay is therefore an upsert and is idempotent, which lets
// the snapshot cadence capture the namespace image without stopping
// writers: the image is taken *after* reading the log sequence, so
// any record that races into both the image and the replay suffix
// converges to the same state.

// walRecord is the journal's record encoding, one JSON object per WAL
// entry.
type walRecord struct {
	Kind   string          `json:"kind"` // "create" | "delete" | "blocks"
	Name   string          `json:"name"`
	File   *dfs.FileMeta   `json:"file,omitempty"`
	Blocks []dfs.BlockMeta `json:"blocks,omitempty"`
}

// walSnapshot is the checkpoint encoding: the full shard image, files
// sorted by name.
type walSnapshot struct {
	Files []*dfs.FileMeta `json:"files"`
}

// walJournal adapts a wal.Log to the dfs.Journal write-ahead hook.
// Its methods run under the owning shard's metadata lock and must
// stay callback-free.
type walJournal struct {
	log *wal.Log
}

func (j *walJournal) LogCreate(fm *dfs.FileMeta) error {
	return j.append(walRecord{Kind: "create", Name: fm.Name, File: fm})
}

func (j *walJournal) LogDelete(name string) error {
	return j.append(walRecord{Kind: "delete", Name: name})
}

func (j *walJournal) LogBlocks(name string, blocks []dfs.BlockMeta) error {
	return j.append(walRecord{Kind: "blocks", Name: name, Blocks: blocks})
}

func (j *walJournal) append(r walRecord) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("svc: encode wal record: %w", err)
	}
	if _, err := j.log.Append(buf); err != nil {
		return fmt.Errorf("svc: append wal record: %w", err)
	}
	return nil
}

// openJournal opens (or creates) one shard's WAL directory and
// rebuilds the shard image it describes: newest snapshot first, then
// the record suffix upserted on top.
func openJournal(dir string) (*walJournal, []*dfs.FileMeta, error) {
	log, err := wal.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("svc: open wal %s: %w", dir, err)
	}
	files, err := replayNamespace(log)
	if err != nil {
		_ = log.Close()
		return nil, nil, err
	}
	return &walJournal{log: log}, files, nil
}

// RecoverNamespace rebuilds the namespace image a single-shard WAL
// directory describes without taking ownership of the log — the
// read-only recovery used by fsck-style tooling and the
// bit-determinism tests. For sharded layouts use RecoverShards.
func RecoverNamespace(dir string) ([]*dfs.FileMeta, error) {
	j, files, err := openJournal(dir)
	if err != nil {
		return nil, err
	}
	if err := j.log.Close(); err != nil {
		return nil, fmt.Errorf("svc: close wal %s: %w", dir, err)
	}
	return files, nil
}

// RecoverShards rebuilds every shard's image from a sharded WAL root
// (shards == 1 reads the flat legacy layout), one sorted file list
// per shard, without taking ownership of any log. Each shard recovers
// independently — corruption in one shard's log does not block the
// others from being read, but this helper fails fast on the first
// error so callers never mistake a partial recovery for a full one.
func RecoverShards(root string, shards int) ([][]*dfs.FileMeta, error) {
	dirs, err := wal.ShardDirs(root, shards)
	if err != nil {
		return nil, err
	}
	out := make([][]*dfs.FileMeta, len(dirs))
	for i, dir := range dirs {
		files, err := RecoverNamespace(dir)
		if err != nil {
			return nil, fmt.Errorf("svc: recover shard %d: %w", i, err)
		}
		out[i] = files
	}
	return out, nil
}

// replayNamespace folds snapshot + records into a sorted file list.
func replayNamespace(log *wal.Log) ([]*dfs.FileMeta, error) {
	table := make(map[string]*dfs.FileMeta)
	if snap, seq := log.Snapshot(); snap != nil {
		var s walSnapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			return nil, fmt.Errorf("svc: decode wal snapshot at seq %d: %w", seq, err)
		}
		for _, fm := range s.Files {
			table[fm.Name] = fm
		}
	}
	err := log.Replay(func(seq uint64, rec []byte) error {
		var r walRecord
		if err := json.Unmarshal(rec, &r); err != nil {
			return fmt.Errorf("svc: decode wal record %d: %w", seq, err)
		}
		switch r.Kind {
		case "create":
			if r.File == nil {
				return fmt.Errorf("svc: wal record %d: create without file: %w", seq, wal.ErrCorrupt)
			}
			table[r.Name] = r.File
		case "delete":
			delete(table, r.Name)
		case "blocks":
			// A blocks record for an absent file is legal: it can sit
			// in the snapshot/suffix overlap window after the file's
			// delete was already folded into the snapshot. Upsert
			// semantics make it a no-op.
			if fm, ok := table[r.Name]; ok {
				fm.Blocks = r.Blocks
			}
		default:
			return fmt.Errorf("svc: wal record %d has unknown kind %q: %w", seq, r.Kind, wal.ErrCorrupt)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	files := make([]*dfs.FileMeta, 0, len(table))
	for _, name := range sortedKeys(table) {
		files = append(files, table[name])
	}
	return files, nil
}

func sortedKeys(m map[string]*dfs.FileMeta) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// durableState is the NameNodeServer's durability bookkeeping: one
// journal and one checkpoint lock per namespace shard (empty when the
// NameNode runs without a WAL).
type durableState struct {
	journals      []*walJournal
	snapshotEvery uint64
	snapMus       []sync.Mutex // one checkpoint at a time, per shard
}

// maybeSnapshot checkpoints every shard whose replay suffix has grown
// past the configured cadence. Safe (and cheap) to call after any
// mutation; concurrent callers skip a shard being checkpointed rather
// than queue behind it. Shards checkpoint independently — a busy
// shard's cadence never forces an idle shard to re-image.
func (s *NameNodeServer) maybeSnapshot() {
	d := &s.durable
	for i, j := range d.journals {
		if j.log.RecordsSinceSnapshot() < d.snapshotEvery {
			continue
		}
		if !d.snapMus[i].TryLock() {
			continue // this shard's checkpoint is already running
		}
		_ = s.snapshotLocked(i)
		d.snapMus[i].Unlock()
	}
}

// Checkpoint forces a namespace snapshot of every shard into its WAL
// now (testing and operational tooling; the cadence path calls
// snapshotLocked).
func (s *NameNodeServer) Checkpoint() error {
	d := &s.durable
	for i := range d.journals {
		d.snapMus[i].Lock()
		err := s.snapshotLocked(i)
		d.snapMus[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// snapshotLocked captures and saves one shard's checkpoint. The
// sequence is read *before* the image: records committed during the
// capture are both inside the image and replayed on top, which upsert
// replay makes harmless.
func (s *NameNodeServer) snapshotLocked(i int) error {
	d := &s.durable
	upTo := d.journals[i].log.Seq()
	img := s.nn.FilesImageShard(i)
	state, err := json.Marshal(walSnapshot{Files: img})
	if err != nil {
		return fmt.Errorf("svc: encode wal snapshot: %w", err)
	}
	if err := d.journals[i].log.SaveSnapshot(state, upTo); err != nil {
		return fmt.Errorf("svc: save wal snapshot: %w", err)
	}
	return nil
}

// WALSeq reports the committed record sequence summed across shard
// journals (0 when the NameNode runs without a WAL). With one shard
// this is exactly the single log's sequence.
func (s *NameNodeServer) WALSeq() uint64 {
	var total uint64
	for _, j := range s.durable.journals {
		total += j.log.Seq()
	}
	return total
}

// WALSnapshotSeq reports the sequence covered by checkpoints, summed
// across shard journals. With one shard this is exactly the single
// log's newest snapshot sequence.
func (s *NameNodeServer) WALSnapshotSeq() uint64 {
	var total uint64
	for _, j := range s.durable.journals {
		total += j.log.SnapshotSeq()
	}
	return total
}

// WALShardSeqs reports each shard journal's (committed, snapshotted)
// sequence pair, in shard order — the per-shard view behind the
// WALSeq/WALSnapshotSeq aggregates. Nil without a WAL.
func (s *NameNodeServer) WALShardSeqs() [][2]uint64 {
	if len(s.durable.journals) == 0 {
		return nil
	}
	out := make([][2]uint64, len(s.durable.journals))
	for i, j := range s.durable.journals {
		out[i] = [2]uint64{j.log.Seq(), j.log.SnapshotSeq()}
	}
	return out
}

// Durable reports whether this NameNode journals its namespace.
func (s *NameNodeServer) Durable() bool { return len(s.durable.journals) > 0 }

// NamespaceFingerprint hashes the live namespace (see
// dfs.FingerprintFiles) — the recovery tests' bit-determinism probe.
func (s *NameNodeServer) NamespaceFingerprint() string { return s.nn.Fingerprint() }

// ShardFingerprint hashes one shard's live file table — the per-shard
// bit-determinism probe the sharded recovery tests compare against a
// double replay of that shard's log.
func (s *NameNodeServer) ShardFingerprint(i int) string {
	return s.nn.FingerprintShard(i)
}

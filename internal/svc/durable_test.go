package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// bootDurable starts a loopback cluster whose NameNode journals into
// dir, with a cleanup that tears the whole thing down.
func bootDurable(t *testing.T, n int, seed uint64, cfg NameNodeConfig) *LocalCluster {
	t.Helper()
	c, err := cluster.New(make([]cluster.Node, n))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(seed), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	return lc
}

// durablePayload builds a deterministic, compressible-hostile payload
// distinct per index.
func durablePayload(i, size int) []byte {
	data := make([]byte, size)
	for j := range data {
		data[j] = byte((i*131 + j*7) % 251)
	}
	return data
}

// restartCluster rebuilds the cluster value RestartNameNode needs (same
// shape, availability-stripped — the estimator refills from
// heartbeats).
func restartCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(make([]cluster.Node, n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDurableRestartRecoversNamespace: a graceful stop and a fresh
// NameNode over the same WAL directory must reproduce the namespace
// exactly — same fingerprint, same bytes on read, deletes stay
// deleted — and RecoverNamespace must be bit-deterministic.
func TestDurableRestartRecoversNamespace(t *testing.T) {
	dir := t.TempDir()
	cfg := NameNodeConfig{BlockSize: 256, Replication: 2, WALDir: dir}
	lc := bootDurable(t, 4, 51, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	defer cl.Close()
	want := map[string][]byte{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("f%d", i)
		data := durablePayload(i, 700+i*301)
		if _, _, err := cl.CopyFromLocal(ctx, name, data, false); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	if _, err := cl.Cp(ctx, "f0", "f0-copy", true); err != nil {
		t.Fatal(err)
	}
	want["f0-copy"] = want["f0"]
	if err := cl.Delete(ctx, "f1"); err != nil {
		t.Fatal(err)
	}
	delete(want, "f1")
	if _, err := cl.Rebalance(ctx, "f2"); err != nil {
		t.Fatal(err)
	}

	preFP := lc.NN.NamespaceFingerprint()
	if err := lc.NN.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lc.RestartNameNode(restartCluster(t, 4), stats.NewRNG(52), cfg); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("fingerprint changed across restart:\n pre %s\npost %s", preFP, got)
	}

	cl2 := lc.Client("shell2")
	defer cl2.Close()
	for name, data := range want {
		got, err := cl2.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("read %q after restart: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%q: recovered bytes differ (%d vs %d)", name, len(got), len(data))
		}
	}
	if _, err := cl2.Stat(ctx, "f1"); !errors.Is(err, dfs.ErrFileNotFound) {
		t.Fatalf("deleted file resurrected: %v", err)
	}

	// Bit-determinism: two independent replays of the same directory
	// produce byte-identical namespace fingerprints.
	files1, err := RecoverNamespace(dir)
	if err != nil {
		t.Fatal(err)
	}
	files2, err := RecoverNamespace(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := dfs.FingerprintFiles(files1), dfs.FingerprintFiles(files2)
	if fp1 != fp2 {
		t.Fatalf("replay not deterministic:\n%s\n%s", fp1, fp2)
	}
	if fp1 != preFP {
		t.Fatalf("recovered fingerprint %s != live %s", fp1, preFP)
	}
}

// TestCrashRecoveryKeepsAckedWrites: a SIGKILL-style crash (no final
// sync, no drain) must lose nothing that was acknowledged.
func TestCrashRecoveryKeepsAckedWrites(t *testing.T) {
	dir := t.TempDir()
	cfg := NameNodeConfig{BlockSize: 512, Replication: 2, WALDir: dir}
	lc := bootDurable(t, 3, 53, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	dataA := durablePayload(1, 1500)
	dataB := durablePayload(2, 900)
	if _, _, err := cl.CopyFromLocal(ctx, "a", dataA, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.CopyFromLocal(ctx, "b", dataB, true); err != nil {
		t.Fatal(err)
	}
	preFP := lc.NN.NamespaceFingerprint()

	lc.CrashNameNode()
	cl.Close()
	if err := lc.RestartNameNode(restartCluster(t, 3), stats.NewRNG(54), cfg); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("crash recovery diverged:\n pre %s\npost %s", preFP, got)
	}
	cl2 := lc.Client("shell2")
	defer cl2.Close()
	for name, data := range map[string][]byte{"a": dataA, "b": dataB} {
		got, err := cl2.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("read %q after crash: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%q: bytes differ after crash recovery", name)
		}
	}
}

// TestJournalFailureVetoesMutation: when the WAL cannot commit, the
// mutation must not be acknowledged or applied — and a restart from
// the directory shows exactly the pre-failure namespace.
func TestJournalFailureVetoesMutation(t *testing.T) {
	dir := t.TempDir()
	cfg := NameNodeConfig{BlockSize: 256, Replication: 2, WALDir: dir}
	lc := bootDurable(t, 3, 55, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	defer cl.Close()
	kept := durablePayload(3, 800)
	if _, _, err := cl.CopyFromLocal(ctx, "keep", kept, false); err != nil {
		t.Fatal(err)
	}
	preFP := lc.NN.NamespaceFingerprint()

	// The journal device "fails": the next append tears and the log
	// breaks, exactly as chaos would do it mid-write.
	lc.NN.durable.journals[0].log.SetFaults(chaos.CrashAfter(0, 0))

	_, _, err := cl.CopyFromLocal(ctx, "lost", durablePayload(4, 800), false)
	if !errors.Is(err, dfs.ErrJournal) {
		t.Fatalf("unjournaled create acknowledged: %v", err)
	}
	if err := cl.Delete(ctx, "keep"); !errors.Is(err, dfs.ErrJournal) {
		t.Fatalf("unjournaled delete acknowledged: %v", err)
	}
	// The veto leaves the in-memory namespace untouched too.
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("vetoed mutations leaked into namespace:\n pre %s\npost %s", preFP, got)
	}
	if got, err := cl.ReadFile(ctx, "keep"); err != nil || !bytes.Equal(got, kept) {
		t.Fatalf("read of surviving file failed: %v", err)
	}

	lc.CrashNameNode()
	if err := lc.RestartNameNode(restartCluster(t, 3), stats.NewRNG(56), cfg); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("restart after journal failure diverged:\n pre %s\npost %s", preFP, got)
	}
	cl2 := lc.Client("shell2")
	defer cl2.Close()
	if _, err := cl2.Stat(ctx, "lost"); !errors.Is(err, dfs.ErrFileNotFound) {
		t.Fatalf("vetoed file recovered anyway: %v", err)
	}
}

// TestSnapshotCadenceTruncatesLog: once the replay suffix passes
// SnapshotEvery, the next acknowledged mutation checkpoints the
// namespace and truncates the log — and recovery through a
// snapshot+suffix (and through a pure snapshot) stays exact.
func TestSnapshotCadenceTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	cfg := NameNodeConfig{BlockSize: 256, Replication: 2, WALDir: dir, SnapshotEvery: 4}
	lc := bootDurable(t, 3, 57, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	defer cl.Close()
	for i := 0; i < 6; i++ {
		if _, _, err := cl.CopyFromLocal(ctx, fmt.Sprintf("s%d", i), durablePayload(i, 300), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := lc.NN.WALSeq(); got != 6 {
		t.Fatalf("wal seq = %d, want 6 (one create record per write)", got)
	}
	if got := lc.NN.WALSnapshotSeq(); got != 4 {
		t.Fatalf("snapshot seq = %d, want 4 (cadence fired at the 4th record)", got)
	}
	preFP := lc.NN.NamespaceFingerprint()

	// Snapshot + two-record suffix.
	lc.CrashNameNode()
	if err := lc.RestartNameNode(restartCluster(t, 3), stats.NewRNG(58), cfg); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("snapshot+suffix recovery diverged")
	}

	// Forced checkpoint, then a pure-snapshot (empty suffix) recovery.
	if err := lc.NN.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.WALSnapshotSeq(); got != lc.NN.WALSeq() {
		t.Fatalf("forced checkpoint left suffix: snap %d seq %d", got, lc.NN.WALSeq())
	}
	lc.CrashNameNode()
	if err := lc.RestartNameNode(restartCluster(t, 3), stats.NewRNG(59), cfg); err != nil {
		t.Fatal(err)
	}
	if got := lc.NN.NamespaceFingerprint(); got != preFP {
		t.Fatalf("pure-snapshot recovery diverged")
	}
}

package svc

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// testCluster boots an n-node loopback cluster with small blocks and
// replication 2, registering cleanup.
func testCluster(t *testing.T, n int, faults TransportFaults) *LocalCluster {
	t.Helper()
	nodes := make([]cluster.Node, n)
	c, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(7), faults, NameNodeConfig{
		BlockSize:   1024,
		Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	return lc
}

func payload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return data
}

// TestEndToEndShellOverTCP drives the basic shell surface over real
// sockets: copyFromLocal, stat, list, read, cp, dist, delete.
func TestEndToEndShellOverTCP(t *testing.T) {
	lc := testCluster(t, 4, nil)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	data := payload(8 * 1024) // 8 blocks at 1 KiB
	fm, report, err := cl.CopyFromLocal(ctx, "f", data, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Blocks) != 8 || report.Blocks != 8 || report.MinReplication != 2 {
		t.Fatalf("write: blocks=%d report=%+v", len(fm.Blocks), report)
	}

	got, err := cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ from written")
	}

	if _, err := cl.Stat(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat(ctx, "ghost"); !errors.Is(err, dfs.ErrFileNotFound) {
		t.Fatalf("stat ghost = %v, want ErrFileNotFound across the wire", err)
	}

	if _, err := cl.Cp(ctx, "f", "g", true); err != nil {
		t.Fatal(err)
	}
	files, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("list = %v, want 2 files", files)
	}

	counts, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 16 { // 8 blocks × replication 2
		t.Fatalf("distribution %v sums to %d, want 16", counts, total)
	}

	if err := cl.Delete(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSurvivesPartitionAndAdapts is the headline e2e: write
// over TCP, partition a replica-holding DataNode with the chaos net
// hook, read through failover, heal, feed the NameNode heartbeats
// that mark two nodes flaky, and run the live adapt rebalance — the
// placement must shift toward the reliable nodes and the namespace
// must stay consistent.
func TestClusterSurvivesPartitionAndAdapts(t *testing.T) {
	nf, err := chaos.NewNetFaults(stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	lc := testCluster(t, 4, nf)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	data := payload(8 * 1024)
	if _, _, err := cl.CopyFromLocal(ctx, "f", data, false); err != nil {
		t.Fatal(err)
	}

	// Partition a node that holds replicas. Replication 2 guarantees
	// every block keeps a live copy.
	counts, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.NodeID(-1)
	for id, n := range counts {
		if n > 0 {
			victim = cluster.NodeID(id)
			break
		}
	}
	if victim < 0 {
		t.Fatalf("no node holds replicas: %v", counts)
	}
	nf.Partition(endpointName(victim))

	got, err := cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatalf("read during partition: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ during partition")
	}
	if lc.Engine().Resilience().Snapshot().NodeDownErrors == 0 {
		t.Fatal("partition read succeeded without touching the failover path")
	}

	// Heal, then teach the predictor: nodes 0 and 1 report heavy
	// interruption history, 2 and 3 report clean uptime.
	nf.Heal(endpointName(victim))
	for id := cluster.NodeID(0); id < 4; id++ {
		if id < 2 {
			if err := lc.ObserveUptime(id, 600); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 60; i++ {
				if err := lc.ObserveInterruption(id, 8); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := lc.ObserveUptime(id, 1080); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}

	est, err := cl.Estimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if est[0].Lambda == 0 || est[2].Lambda != 0 {
		t.Fatalf("estimates did not reflect heartbeats: %+v", est)
	}

	moved, err := cl.Adapt(ctx, "f")
	if err != nil {
		t.Fatalf("adapt rebalance: %v", err)
	}
	if moved == 0 {
		t.Fatal("adapt moved no replicas despite skewed availability")
	}

	after, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	flaky, reliable := after[0]+after[1], after[2]+after[3]
	if reliable <= flaky {
		t.Fatalf("adapt did not skew toward reliable nodes: flaky=%d reliable=%d (%v)", flaky, reliable, after)
	}

	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatalf("consistency after adapt: %v", err)
	}
	got, err = cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ after adapt")
	}
}

// TestDeadlinePropagatesOverWire: a client deadline too short for the
// work must surface context.DeadlineExceeded through the wire
// taxonomy, not hang.
func TestDeadlinePropagatesOverWire(t *testing.T) {
	nf, err := chaos.NewNetFaults(stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	lc := testCluster(t, 3, nf)
	cl := lc.Client("shell")
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := cl.CopyFromLocal(ctx, "f", payload(2048), false); err != nil {
		t.Fatal(err)
	}

	// Partition every DataNode so the read path can only retry, then
	// give it a deadline far shorter than the backoff schedule.
	for id := cluster.NodeID(0); id < 3; id++ {
		nf.Partition(endpointName(id))
	}
	short, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	_, err = cl.ReadFile(short, "f")
	if err == nil {
		t.Fatal("read with all datanodes partitioned succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !dfs.IsTransient(err) {
		t.Fatalf("err = %v, want deadline or transient classification", err)
	}
	for id := cluster.NodeID(0); id < 3; id++ {
		nf.Heal(endpointName(id))
	}
}

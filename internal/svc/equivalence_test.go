package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// Protocol equivalence: the v2 binary data plane must be observably
// identical to the legacy JSON path — same bytes stored and read back,
// same WriteReports, same placement under the same seed, and the same
// error taxonomy for every registered wire code. Only the wire format
// differs.

// equivCluster boots a cluster with the given data path, everything
// else held fixed (seed included, so placement draws are comparable).
func equivCluster(t *testing.T, dataPath string) *LocalCluster {
	t.Helper()
	nodes := make([]cluster.Node, 4)
	c, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(7), nil, NameNodeConfig{
		BlockSize:   1024,
		Replication: 2,
		DataPath:    dataPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	return lc
}

// TestProtocolEquivalenceContent writes the same files through both
// data planes and asserts byte-identical reads, identical
// WriteReports, and identical placement.
func TestProtocolEquivalenceContent(t *testing.T) {
	jsonLC := equivCluster(t, DataPathJSON)
	binLC := equivCluster(t, DataPathBinary)
	jsonCL := jsonLC.Client("shell")
	defer jsonCL.Close()
	binCL := binLC.Client("shell")
	defer binCL.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Sizes chosen to cross block boundaries every way: sub-block,
	// exact multiple, ragged tail, and empty.
	cases := []struct {
		name string
		size int
	}{
		{"empty", 0},
		{"subblock", 100},
		{"exact", 4 * 1024},
		{"ragged", 5*1024 + 17},
	}
	for _, tc := range cases {
		data := payload(tc.size)
		jm, jr, err := jsonCL.CopyFromLocal(ctx, tc.name, data, false)
		if err != nil {
			t.Fatalf("%s: json write: %v", tc.name, err)
		}
		bm, br, err := binCL.CopyFromLocal(ctx, tc.name, data, false)
		if err != nil {
			t.Fatalf("%s: binary write: %v", tc.name, err)
		}
		if jr != br {
			t.Errorf("%s: WriteReport diverged: json %+v vs binary %+v", tc.name, jr, br)
		}
		if len(jm.Blocks) != len(bm.Blocks) {
			t.Fatalf("%s: block counts diverged: %d vs %d", tc.name, len(jm.Blocks), len(bm.Blocks))
		}
		// Same seed, same draws: every block must land on the same
		// holders in the same order.
		for i := range jm.Blocks {
			jb, bb := jm.Blocks[i], bm.Blocks[i]
			if jb.ID != bb.ID || len(jb.Replicas) != len(bb.Replicas) {
				t.Fatalf("%s block %d: meta diverged: %+v vs %+v", tc.name, i, jb, bb)
			}
			for k := range jb.Replicas {
				if jb.Replicas[k] != bb.Replicas[k] {
					t.Errorf("%s block %d: placement diverged: %v vs %v", tc.name, i, jb.Replicas, bb.Replicas)
					break
				}
			}
		}
		jgot, err := jsonCL.ReadFile(ctx, tc.name)
		if err != nil {
			t.Fatalf("%s: json read: %v", tc.name, err)
		}
		bgot, err := binCL.ReadFile(ctx, tc.name)
		if err != nil {
			t.Fatalf("%s: binary read: %v", tc.name, err)
		}
		if !bytes.Equal(jgot, data) || !bytes.Equal(bgot, data) {
			t.Errorf("%s: read bytes differ from written", tc.name)
		}
	}

	// Cross-check the stored replicas bit for bit, not just through
	// the read path: fsck-grade equivalence.
	if err := jsonCL.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
	if err := binCL.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolEquivalenceErrors drives the same failure through both
// data planes: reading a block that does not exist must surface
// dfs.ErrBlockNotFound with matching transience from either protocol.
func TestProtocolEquivalenceErrors(t *testing.T) {
	for _, dp := range []string{DataPathJSON, DataPathBinary} {
		lc := equivCluster(t, dp)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, err := lc.Engine().Store(0)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		_, err = st.Get(ctx, dfs.BlockID(12345))
		cancel()
		if !errors.Is(err, dfs.ErrBlockNotFound) {
			t.Errorf("%s: missing block get = %v, want ErrBlockNotFound", dp, err)
		}
		if dfs.IsTransient(err) {
			t.Errorf("%s: missing block classified transient", dp)
		}
	}
}

// TestProtocolEquivalenceTaxonomy encodes an error wrapping every
// registered wire code through the v1 JSON envelope and the v2 binary
// error frame and asserts the rehydrated errors are indistinguishable:
// same errors.Is matches, same transience, same message.
func TestProtocolEquivalenceTaxonomy(t *testing.T) {
	for _, ec := range wireCodes {
		src := fmt.Errorf("equivalence probe: %w", ec.sentinel)

		var resp response
		encodeError(&resp, src)
		v1 := decodeError(&resp)
		v2 := decodeErrorFrame(encodeErrorFrame(src))

		if errors.Is(v1, ec.sentinel) != errors.Is(v2, ec.sentinel) {
			t.Errorf("%s: sentinel match diverged (v1 %v, v2 %v)", ec.code, errors.Is(v1, ec.sentinel), errors.Is(v2, ec.sentinel))
		}
		if !errors.Is(v2, ec.sentinel) {
			t.Errorf("%s: v2 lost the sentinel", ec.code)
		}
		if dfs.IsTransient(v1) != dfs.IsTransient(v2) {
			t.Errorf("%s: transience diverged (v1 %v, v2 %v)", ec.code, dfs.IsTransient(v1), dfs.IsTransient(v2))
		}
		if v1.Error() != v2.Error() {
			t.Errorf("%s: message diverged: %q vs %q", ec.code, v1.Error(), v2.Error())
		}
	}
}

// TestStreamedWriteEquivalence: the streaming entry point must place
// and store exactly what the buffered one does under the same seed —
// same replicas, same bytes — because it draws from the same RNG
// sequence block by block.
func TestStreamedWriteEquivalence(t *testing.T) {
	bufLC := equivCluster(t, DataPathBinary)
	strLC := equivCluster(t, DataPathBinary)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Identical fresh clients over each cluster's engine, so the
	// placement RNG sequences are comparable draw for draw.
	mkClient := func(lc *LocalCluster) *dfs.Client {
		cl, err := dfs.NewClient(lc.Engine(), stats.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		cl.BlockSize = 1024
		cl.Replication = 2
		return cl
	}
	bufCL := mkClient(bufLC)
	strCL := mkClient(strLC)

	data := payload(5*1024 + 333)
	bm, brep, err := bufCL.CopyFromLocalReportContext(ctx, "f", data, false)
	if err != nil {
		t.Fatal(err)
	}
	sm, srep, err := strCL.CopyFromLocalStreamContext(ctx, "f", bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if brep != srep {
		t.Errorf("WriteReport diverged: buffered %+v vs streamed %+v", brep, srep)
	}
	if len(bm.Blocks) != len(sm.Blocks) {
		t.Fatalf("block counts diverged: %d vs %d", len(bm.Blocks), len(sm.Blocks))
	}
	for i := range bm.Blocks {
		if bm.Blocks[i].ID != sm.Blocks[i].ID {
			t.Errorf("block %d: id %d vs %d", i, bm.Blocks[i].ID, sm.Blocks[i].ID)
		}
		for k := range bm.Blocks[i].Replicas {
			if bm.Blocks[i].Replicas[k] != sm.Blocks[i].Replicas[k] {
				t.Errorf("block %d: placement diverged: %v vs %v", i, bm.Blocks[i].Replicas, sm.Blocks[i].Replicas)
				break
			}
		}
	}

	var sink bytes.Buffer
	n, err := strCL.ReadFileToContext(ctx, "f", &sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(sink.Bytes(), data) {
		t.Errorf("streamed read returned %d bytes, differs from written", n)
	}
}

// Package svc is the networked ADAPT cluster (paper §IV/§V brought to
// real sockets): a NameNode service holding metadata, the heartbeat
// collector, and the performance predictor; DataNode services storing
// block replicas; and a shell-style client — all speaking
// length-prefixed JSON frames over TCP, stdlib only.
//
// The services are thin transports over the existing internal/dfs
// engine: the NameNode runs dfs.NameNode/dfs.Client over remote
// BlockStore proxies, so copyFromLocal, cp, the live adapt rebalance,
// replica failover, and crash-consistent redistribution are exactly
// the code paths the in-process tests already certify. DataNodes send
// periodic heartbeats carrying cumulative interruption observations;
// the NameNode folds the deltas into per-node (λ, μ) estimates and
// refreshes the 1/E[T] placement weights, closing the paper's
// predictor loop over the wire.
//
// Every RPC takes a context deadline, and both ends of the transport
// consult a pluggable TransportFaults hook so a chaos engine
// (chaos.NetFaults) can drop, delay, and partition connections.
package svc

import "errors"

// Service-layer sentinels. Wire errors arriving from a peer are
// rehydrated so errors.Is matches these and the dfs sentinels across
// the network.
var (
	// ErrStaleHeartbeat marks a heartbeat whose sequence number is not
	// newer than the last one folded for that node: a delayed or
	// replayed beat that must not rewind the estimator.
	ErrStaleHeartbeat = errors.New("svc: stale heartbeat")
	// ErrUnknownMethod marks an RPC the peer does not implement.
	ErrUnknownMethod = errors.New("svc: unknown method")
	// ErrShuttingDown marks requests rejected because the server is
	// draining; in-flight requests still complete.
	ErrShuttingDown = errors.New("svc: server shutting down")
	// ErrUnknownDataNode marks a heartbeat or block RPC naming a node
	// id outside the cluster.
	ErrUnknownDataNode = errors.New("svc: unknown datanode")
	// ErrConnClosed marks calls failed because the connection died
	// (peer gone, partition, or local close) before a response.
	ErrConnClosed = errors.New("svc: connection closed")
	// ErrBadObservation marks an availability observation that cannot
	// be folded (negative durations, downtime without interruptions).
	ErrBadObservation = errors.New("svc: bad availability observation")
	// ErrFrameTooLarge marks a frame exceeding MaxFrameSize in either
	// direction; the connection is torn down (framing is lost).
	ErrFrameTooLarge = errors.New("svc: frame too large")
	// ErrBadFrame marks an undecodable frame; the connection is torn
	// down.
	ErrBadFrame = errors.New("svc: bad frame")
)

// errorCode maps error chains to stable wire codes and back, so
// errors.Is works across the network: a dfs.ErrFileNotFound raised in
// the NameNode's engine arrives at the shell client still matching
// dfs.ErrFileNotFound.
type errorCode struct {
	code     string
	sentinel error
}

// wireCodes is consulted in order at encode time (first errors.Is
// match wins) and by exact code at decode time.
var wireCodes = []errorCode{}

// registerCode is called from init functions below and from
// wire_dfs.go to keep the table in one place.
func registerCode(code string, sentinel error) {
	wireCodes = append(wireCodes, errorCode{code: code, sentinel: sentinel})
}

func init() {
	registerCode("stale_heartbeat", ErrStaleHeartbeat)
	registerCode("unknown_method", ErrUnknownMethod)
	registerCode("shutting_down", ErrShuttingDown)
	registerCode("unknown_datanode", ErrUnknownDataNode)
	registerCode("conn_closed", ErrConnClosed)
	registerCode("bad_observation", ErrBadObservation)
}

// codeFor returns the wire code for an error chain ("" when no
// sentinel matches).
func codeFor(err error) string {
	for _, ec := range wireCodes {
		if errors.Is(err, ec.sentinel) {
			return ec.code
		}
	}
	return ""
}

// sentinelFor returns the sentinel for a wire code (nil when
// unknown — the error still carries its message and transience).
func sentinelFor(code string) error {
	for _, ec := range wireCodes {
		if ec.code == code {
			return ec.sentinel
		}
	}
	return nil
}

// RemoteError is an error that crossed the wire: it prints the peer's
// message, unwraps to the sentinel its code names (so errors.Is
// works), and preserves the peer's transient classification (so
// dfs.IsTransient works).
type RemoteError struct {
	Code     string
	Msg      string
	IsRetry  bool
	sentinel error
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap exposes the sentinel named by the wire code.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// Transient reports the peer-side dfs.IsTransient classification.
func (e *RemoteError) Transient() bool { return e.IsRetry }

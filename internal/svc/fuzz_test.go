package svc

import (
	"bytes"
	"testing"
)

// Fuzz targets for the v2 wire codec (wire2.go). The decoders face
// bytes straight off a socket, so the contract under arbitrary input
// is: never panic, never allocate unboundedly, and never leak a pooled
// buffer — readFrame2 owns its payload until it hands it to the
// caller, and every rejection path must have returned it already.
//
// Seed corpus lives in testdata/fuzz/<Target>/ alongside the f.Add
// seeds below; `make fuzz-smoke` gives each target a short randomized
// budget in CI.

// FuzzDecodeFrame feeds arbitrary bytes to the frame reader and every
// control-payload decoder.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameVersion})
	// A well-formed chunk frame, so mutations explore near-valid space.
	var valid bytes.Buffer
	if err := writeFrame2(&valid, frameChunk, flagLast, 7, []byte("block bytes")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(encodeOpenWrite(openWrite{Block: 3, Size: 1024, From: "nn", Chain: []chainEntry{{Node: 1, Addr: "127.0.0.1:9"}}}))
	f.Add(encodeAcks([]ackEntry{{Node: 2, OK: true}, {Node: 3, Code: "node_down", Msg: "down", Transient: true}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		start := frameBufs.balance()
		if fr, err := readFrame2(bytes.NewReader(data)); err == nil {
			if fr.Type == 0 || fr.Type > frameReadHdr {
				t.Fatalf("accepted frame with invalid type %d", fr.Type)
			}
			fr.release()
		}
		// The control decoders must be total functions over []byte.
		_, _ = decodeOpenWrite(data)
		_, _ = decodeOpenRead(data)
		if acks, err := decodeAcks(data); err == nil {
			for _, e := range acks {
				_ = e.err()
			}
		}
		_ = decodeErrorFrame(data)
		_, _ = decodeReadHdr(data)
		if got := frameBufs.balance(); got != start {
			t.Fatalf("pool balance drifted %d -> %d", start, got)
		}
	})
}

// FuzzChunkReassembly streams an arbitrary payload through the chunked
// frame encoding at an arbitrary chunk size and asserts the
// reassembled bytes are identical — the invariant the pipeline relay
// and the streaming read both stand on.
func FuzzChunkReassembly(f *testing.F) {
	f.Add([]byte(""), uint32(1))
	f.Add([]byte("hello, world"), uint32(5))
	f.Add(bytes.Repeat([]byte{0xA5}, 4096), uint32(1024))

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint32) {
		start := frameBufs.balance()
		size := int(chunkSize % MaxChunkPayload)
		if size == 0 {
			size = 1
		}
		var wire bytes.Buffer
		sid := uint64(len(data)) + 1
		for off := 0; ; {
			n := len(data) - off
			if n > size {
				n = size
			}
			last := off+n == len(data)
			var flags uint16
			if last {
				flags = flagLast
			}
			if err := writeFrame2(&wire, frameChunk, flags, sid, data[off:off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
			if last {
				break
			}
		}

		got := make([]byte, 0, len(data))
		for {
			fr, err := readFrame2(&wire)
			if err != nil {
				t.Fatalf("decode after %d bytes: %v", len(got), err)
			}
			if fr.Type != frameChunk || fr.Stream != sid {
				t.Fatalf("frame %d/%d mismatch: %+v", fr.Type, fr.Stream, fr)
			}
			got = append(got, fr.Payload...)
			last := fr.last()
			fr.release()
			if last {
				break
			}
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("reassembly differs: %d vs %d bytes", len(got), len(data))
		}
		if wire.Len() != 0 {
			t.Fatalf("%d trailing bytes after last chunk", wire.Len())
		}
		if got := frameBufs.balance(); got != start {
			t.Fatalf("pool balance drifted %d -> %d", start, got)
		}
	})
}

package svc

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/stats"
)

// hedgeCluster boots a 4-node cluster with hedged reads enabled and no
// breakers, so the hedge path alone must cope with a gray replica.
func hedgeCluster(t *testing.T, hedge HedgeConfig) (*LocalCluster, *chaos.NetFaults) {
	t.Helper()
	c, err := cluster.New(make([]cluster.Node, 4))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := chaos.NewNetFaults(stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(7), faults, NameNodeConfig{
		BlockSize:   4096,
		Replication: 2,
		HedgeReads:  true,
		Hedge:       hedge,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	return lc, faults
}

// TestHedgedReadWinsAgainstGrayReplica grays the primary replica of a
// block and requires the hedge to rescue every read: the backup fetch
// fires after the threshold, wins, returns byte-identical data fast,
// and the cancelled loser neither leaks pooled buffers nor poisons the
// primary's liveness (proved by the reads continuing to hedge — a
// down-marked primary would drop out of the live list and the reads
// would stop needing hedges at all).
func TestHedgedReadWinsAgainstGrayReplica(t *testing.T) {
	lc, faults := hedgeCluster(t, HedgeConfig{
		Quantile:   0.5,
		Multiplier: 2,
		MinDelay:   10 * time.Millisecond,
		Window:     32,
		MinSamples: 4,
	})
	start := frameBufs.balance()
	cl := lc.Client("hedge")
	defer cl.Close()
	ctx := context.Background()

	data := payload(4096) // one block
	if _, _, err := cl.CopyFromLocal(ctx, "h", data, true); err != nil {
		t.Fatal(err)
	}
	// Warm reads fill the latency window past MinSamples; on loopback
	// the threshold settles at the MinDelay floor.
	for i := 0; i < 6; i++ {
		if _, err := cl.ReadFile(ctx, "h"); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
	}
	fm, err := cl.Stat(ctx, "h")
	if err != nil {
		t.Fatal(err)
	}
	primary := fm.Blocks[0].Replicas[0]
	faults.SetGray(endpointName(primary), 2*time.Second)
	base := lc.Engine().Resilience().Snapshot()

	for i := 0; i < 3; i++ {
		rctx, cancel := context.WithTimeout(ctx, 3*time.Second)
		t0 := time.Now()
		got, err := cl.ReadFile(rctx, "h")
		took := time.Since(t0)
		cancel()
		if err != nil {
			t.Fatalf("read %d with gray primary: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d: hedged bytes differ from written", i)
		}
		if took > time.Second {
			t.Fatalf("read %d took %v: the hedge did not rescue it", i, took)
		}
	}

	snap := lc.Engine().Resilience().Snapshot()
	if hedged := snap.HedgedReads - base.HedgedReads; hedged < 3 {
		t.Fatalf("hedged reads = %d, want >= 3 (one per gray read)", hedged)
	}
	if wins := snap.HedgeWins - base.HedgeWins; wins < 1 {
		t.Fatalf("hedge wins = %d, want >= 1", wins)
	}
	// The losers' pooled stream buffers must all come back.
	requirePoolBalance(t, start)
}

// TestHedgeQuietOnFastCluster: with a healthy cluster and a threshold
// parked far above observed latency, reads must never hedge — hedging
// on noise would double read traffic for nothing.
func TestHedgeQuietOnFastCluster(t *testing.T) {
	lc, _ := hedgeCluster(t, HedgeConfig{
		Quantile:   0.95,
		Multiplier: 20,
		MinDelay:   300 * time.Millisecond,
		Window:     32,
		MinSamples: 4,
	})
	cl := lc.Client("quiet")
	defer cl.Close()
	ctx := context.Background()

	data := payload(4096)
	if _, _, err := cl.CopyFromLocal(ctx, "q", data, true); err != nil {
		t.Fatal(err)
	}
	base := lc.Engine().Resilience().Snapshot()
	for i := 0; i < 20; i++ {
		got, err := cl.ReadFile(ctx, "q")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d: bytes differ", i)
		}
	}
	snap := lc.Engine().Resilience().Snapshot()
	if hedged := snap.HedgedReads - base.HedgedReads; hedged != 0 {
		t.Fatalf("fast cluster hedged %d reads, want 0", hedged)
	}
}

package svc

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/adaptsim/adapt/internal/shard"
)

// MetricsSnapshot collects everything the observability endpoint
// exports, so the exposition text can be rendered (and unit-tested)
// from a plain value.
type MetricsSnapshot struct {
	UptimeSeconds float64
	Files         int
	Blocks        int
	NodesUp       int
	NodesTotal    int

	// Resilience is the engine's counter snapshot in export order.
	Resilience map[string]int64

	// Per-node heartbeat freshness and (λ, μ) estimates, keyed by
	// numeric node id.
	HeartbeatAge map[int]float64
	Lambda       map[int]float64
	Mu           map[int]float64

	// NodeState is the failure detector's belief per node (0 alive,
	// 1 suspect, 2 dead), for nodes that have heartbeated.
	NodeState map[int]float64

	// WAL durability gauges; meaningful only when Durable.
	Durable        bool
	WALSeq         float64
	WALSnapshotSeq float64

	// Shards is the namespace shard count; Tenants the per-tenant
	// quota/usage rollup in tenant order.
	Shards  int
	Tenants []shard.TenantUsage

	// Admission-control gauges and counters; exported only when the
	// metadata service runs with admission control installed.
	Admission     bool
	AdmitInflight float64
	AdmitQueue    float64
	AdmitAdmitted float64
	AdmitQueued   float64
	AdmitShed     float64
	ShedQueueFull float64
	ShedBrownout  float64
	ShedExpired   float64

	// Per-node circuit-breaker state (0 closed, 1 open, 2 half-open)
	// and fleet-wide transition counters; exported only when breakers
	// are enabled.
	Breakers         bool
	BreakerState     map[int]float64
	BreakerOpens     float64
	BreakerCloses    float64
	BreakerFastFails float64
}

// snapshotMetrics gathers the NameNode's current state for export.
func (s *NameNodeServer) snapshotMetrics(now time.Time) MetricsSnapshot {
	rs := s.nn.Resilience().Snapshot()
	m := MetricsSnapshot{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Files:         len(s.nn.List()),
		Blocks:        s.nn.TotalBlocks(),
		NodesTotal:    len(s.stores),
		Resilience: map[string]int64{
			"read_retries":           rs.ReadRetries,
			"read_failovers":         rs.ReadFailovers,
			"write_failovers":        rs.WriteFailovers,
			"write_retries":          rs.WriteRetries,
			"degraded_writes":        rs.DegradedWrites,
			"checksum_failures":      rs.ChecksumFailures,
			"node_down_errors":       rs.NodeDownErrors,
			"repaired_replicas":      rs.RepairedReplicas,
			"unrepairable_blocks":    rs.UnrepairableBlocks,
			"redistributed_replicas": rs.RedistributedReplicas,
			"injected_faults":        rs.InjectedFaults,
			"injected_corruptions":   rs.InjectedCorruptions,
			"repair_scans":           rs.RepairScans,
			"nodes_declared_dead":    rs.NodesDeclaredDead,
			"speculative_attempts":   rs.SpeculativeAttempts,
			"cancelled_attempts":     rs.CancelledAttempts,
			"wasted_compute_nanos":   rs.WastedCompute.Nanoseconds(),
			"rf_raises":              rs.RFRaises,
			"rf_lowers":              rs.RFLowers,
			"pruned_replicas":        rs.PrunedReplicas,
			"hedged_reads":           rs.HedgedReads,
			"hedge_wins":             rs.HedgeWins,
			"hedge_losses":           rs.HedgeLosses,
		},
		HeartbeatAge:   make(map[int]float64),
		Lambda:         make(map[int]float64),
		Mu:             make(map[int]float64),
		NodeState:      make(map[int]float64),
		Durable:        s.Durable(),
		WALSeq:         float64(s.WALSeq()),
		WALSnapshotSeq: float64(s.WALSnapshotSeq()),
		Shards:         s.nn.ShardCount(),
		Tenants:        s.nn.Quotas().Snapshot(),
	}
	for _, st := range s.stores {
		if st.Up() {
			m.NodesUp++
		}
	}
	for id, age := range s.HeartbeatAges(now) {
		m.HeartbeatAge[int(id)] = age.Seconds()
	}
	for id, av := range s.Estimates() {
		m.Lambda[int(id)] = av.Lambda
		m.Mu[int(id)] = av.Mu
	}
	for id, st := range s.DetectorStates() {
		m.NodeState[int(id)] = float64(st)
	}
	if adm := s.srv.Admission(); adm != nil {
		st := adm.Stats()
		m.Admission = true
		m.AdmitInflight = float64(adm.Inflight())
		m.AdmitQueue = float64(adm.QueueDepth())
		m.AdmitAdmitted = float64(st.Admitted.Load())
		m.AdmitQueued = float64(st.QueueWaits.Load())
		m.AdmitShed = float64(st.Shed())
		m.ShedQueueFull = float64(st.ShedQueueFull.Load())
		m.ShedBrownout = float64(st.ShedBrownout.Load())
		m.ShedExpired = float64(st.ShedExpired.Load())
	}
	if s.brkStats != nil {
		states, bst := s.BreakerStates()
		m.Breakers = true
		m.BreakerState = make(map[int]float64, len(states))
		for id, st := range states {
			m.BreakerState[id] = float64(st)
		}
		m.BreakerOpens = float64(bst.Opens.Load())
		m.BreakerCloses = float64(bst.Closes.Load())
		m.BreakerFastFails = float64(bst.FastFails.Load())
	}
	return m
}

// RenderMetrics writes the snapshot in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample per
// line, node-scoped series labelled with node="<id>".
func RenderMetrics(m MetricsSnapshot) string {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("adapt_namenode_uptime_seconds", "Seconds since the NameNode service started.", m.UptimeSeconds)
	gauge("adapt_namenode_files", "Files in the namespace.", float64(m.Files))
	gauge("adapt_namenode_blocks", "Blocks in the namespace.", float64(m.Blocks))
	gauge("adapt_namenode_datanodes_up", "DataNodes currently believed up.", float64(m.NodesUp))
	gauge("adapt_namenode_datanodes_total", "DataNodes in the cluster.", float64(m.NodesTotal))

	names := make([]string, 0, len(m.Resilience))
	for name := range m.Resilience {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := "adapt_dfs_" + name + "_total"
		fmt.Fprintf(&b, "# HELP %s Cumulative DFS resilience counter %s.\n# TYPE %s counter\n%s %d\n",
			full, name, full, full, m.Resilience[name])
	}

	series := func(name, help string, vals map[int]float64) {
		if len(vals) == 0 {
			return
		}
		ids := make([]int, 0, len(vals))
		for id := range vals {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s{node=\"%d\"} %g\n", name, id, vals[id])
		}
	}
	series("adapt_namenode_heartbeat_age_seconds", "Age of the freshest heartbeat per DataNode.", m.HeartbeatAge)
	series("adapt_namenode_lambda", "Estimated interruption rate lambda per DataNode (1/s).", m.Lambda)
	series("adapt_namenode_mu", "Estimated mean downtime mu per DataNode (s).", m.Mu)
	series("adapt_namenode_datanode_state", "Failure-detector belief per DataNode (0 alive, 1 suspect, 2 dead).", m.NodeState)
	if m.Durable {
		gauge("adapt_namenode_wal_seq", "Last committed WAL record sequence (summed across shard journals).", m.WALSeq)
		gauge("adapt_namenode_wal_snapshot_seq", "WAL sequence covered by namespace snapshots (summed across shard journals).", m.WALSnapshotSeq)
	}
	if m.Shards > 0 {
		gauge("adapt_namenode_shards", "Namespace shard count.", float64(m.Shards))
	}
	if len(m.Tenants) > 0 {
		tenantSeries := func(name, help string, val func(shard.TenantUsage) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, tu := range m.Tenants {
				fmt.Fprintf(&b, "%s{tenant=%q} %g\n", name, tu.Tenant, val(tu))
			}
		}
		tenantSeries("adapt_namenode_tenant_files", "Files charged to a tenant.",
			func(tu shard.TenantUsage) float64 { return float64(tu.Usage.Files) })
		tenantSeries("adapt_namenode_tenant_bytes", "Logical bytes charged to a tenant.",
			func(tu shard.TenantUsage) float64 { return float64(tu.Usage.Bytes) })
		tenantSeries("adapt_namenode_tenant_max_files", "Tenant file quota (0 = unlimited).",
			func(tu shard.TenantUsage) float64 { return float64(tu.Quota.MaxFiles) })
		tenantSeries("adapt_namenode_tenant_max_bytes", "Tenant byte quota (0 = unlimited).",
			func(tu shard.TenantUsage) float64 { return float64(tu.Quota.MaxBytes) })
	}
	if m.Admission {
		counter := func(name, help string, v float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
		}
		gauge("adapt_namenode_admission_inflight", "RPCs currently holding admission slots.", m.AdmitInflight)
		gauge("adapt_namenode_admission_queue_depth", "RPCs waiting in the bounded admission queue.", m.AdmitQueue)
		counter("adapt_namenode_admission_admitted_total", "RPCs admitted past admission control.", m.AdmitAdmitted)
		counter("adapt_namenode_admission_queue_waits_total", "RPCs that waited in the admission queue before admission.", m.AdmitQueued)
		counter("adapt_namenode_admission_shed_total", "RPCs shed by admission control (all causes).", m.AdmitShed)
		counter("adapt_namenode_admission_shed_queue_full_total", "RPCs shed because the admission queue was full.", m.ShedQueueFull)
		counter("adapt_namenode_admission_shed_brownout_total", "Background RPCs shed by brownout degradation.", m.ShedBrownout)
		counter("adapt_namenode_admission_shed_expired_total", "Queued RPCs shed when their deadline budget expired.", m.ShedExpired)
	}
	if m.Breakers {
		counter := func(name, help string, v float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
		}
		series("adapt_namenode_breaker_state", "Circuit-breaker state per DataNode proxy (0 closed, 1 open, 2 half-open).", m.BreakerState)
		counter("adapt_namenode_breaker_opens_total", "Circuit-breaker transitions to open.", m.BreakerOpens)
		counter("adapt_namenode_breaker_closes_total", "Circuit-breaker recoveries to closed.", m.BreakerCloses)
		counter("adapt_namenode_breaker_fast_fails_total", "Calls fast-failed by an open circuit breaker.", m.BreakerFastFails)
	}
	return b.String()
}

// ServeHTTP exposes /metrics (Prometheus text) and /healthz on the
// NameNode, so the service plugs into standard scrapers and probes.
func (s *NameNodeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = fmt.Fprint(w, RenderMetrics(s.snapshotMetrics(time.Now())))
	case "/healthz":
		w.Header().Set("Content-Type", "application/json")
		heartbeating := len(s.HeartbeatAges(time.Now()))
		_, _ = fmt.Fprintf(w, `{"status":"ok","datanodes":%d,"heartbeating":%d}`+"\n", len(s.stores), heartbeating)
	default:
		http.NotFound(w, r)
	}
}

// ListenHTTP binds the observability endpoint and serves it until the
// returned shutdown function is called.
func (s *NameNodeServer) ListenHTTP(addr string) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("svc: listen http %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Shutdown, nil
}

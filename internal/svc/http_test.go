package svc

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestRenderMetricsExpositionFormat pins the Prometheus text format
// from a synthetic snapshot: HELP/TYPE headers, stable counter
// ordering, and node-labelled gauge series.
func TestRenderMetricsExpositionFormat(t *testing.T) {
	out := RenderMetrics(MetricsSnapshot{
		UptimeSeconds: 12.5,
		Files:         3,
		Blocks:        24,
		NodesUp:       2,
		NodesTotal:    3,
		Resilience: map[string]int64{
			"read_retries":   7,
			"read_failovers": 2,
		},
		HeartbeatAge: map[int]float64{1: 0.25, 0: 1.5},
		Lambda:       map[int]float64{0: 0.1},
		Mu:           map[int]float64{0: 4},
	})

	for _, want := range []string{
		"# HELP adapt_namenode_uptime_seconds ",
		"# TYPE adapt_namenode_uptime_seconds gauge\nadapt_namenode_uptime_seconds 12.5\n",
		"adapt_namenode_files 3\n",
		"adapt_namenode_blocks 24\n",
		"adapt_namenode_datanodes_up 2\n",
		"adapt_namenode_datanodes_total 3\n",
		"# TYPE adapt_dfs_read_retries_total counter\nadapt_dfs_read_retries_total 7\n",
		"adapt_dfs_read_failovers_total 2\n",
		"adapt_namenode_heartbeat_age_seconds{node=\"0\"} 1.5\n",
		"adapt_namenode_heartbeat_age_seconds{node=\"1\"} 0.25\n",
		"adapt_namenode_lambda{node=\"0\"} 0.1\n",
		"adapt_namenode_mu{node=\"0\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Counters sort alphabetically for a stable scrape diff.
	if strings.Index(out, "read_failovers_total") > strings.Index(out, "read_retries_total") {
		t.Error("counters not sorted")
	}
	// Every line must be a comment or a sample (format sanity).
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestMetricsAndHealthzOverHTTP scrapes a live NameNode.
func TestMetricsAndHealthzOverHTTP(t *testing.T) {
	c, err := cluster.New(make([]cluster.Node, 3))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(17), nil, NameNodeConfig{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cl := lc.Client("shell")
	defer cl.Close()
	if _, _, err := cl.CopyFromLocal(ctx, "f", make([]byte, 4096), false); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}

	addr, stop, err := lc.NN.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop(ctx) }()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"adapt_namenode_files 1\n",
		"adapt_namenode_blocks 4\n",
		"adapt_namenode_datanodes_total 3\n",
		"adapt_namenode_heartbeat_age_seconds{node=\"0\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, text)
		}
	}

	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, err := io.ReadAll(hresp.Body)
	_ = hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status       string `json:"status"`
		DataNodes    int    `json:"datanodes"`
		Heartbeating int    `json:"heartbeating"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatalf("healthz not JSON: %v (%q)", err, hbody)
	}
	if health.Status != "ok" || health.DataNodes != 3 || health.Heartbeating != 3 {
		t.Fatalf("healthz = %+v", health)
	}
}

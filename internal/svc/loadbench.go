package svc

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// The overload benchmark: the same loopback cluster measured unloaded
// and then under LoadFactor x offered load with a fraction of its
// DataNodes turned gray (alive heartbeats, crawling service). The
// robustness stack — admission control with brownout shedding,
// deadline-budget propagation, per-node circuit breakers, hedged
// reads — is what keeps the overloaded cell's goodput within a
// constant factor of the unloaded cell's, and the report gates on it:
//
//	goodput(overload) >= 0.70 x goodput(baseline)
//	every shed request failed fast with dfs.ErrOverload
//	zero acknowledged writes lost
//
// A build that quietly drops admission control, resets deadline
// budgets per hop, or loses acked writes under load fails its own
// benchmark report.

// BenchLoadSchema identifies the BENCH_load.json layout. Bump only on
// incompatible changes; trajectory tooling keys on it.
const BenchLoadSchema = "adapt-bench-load/v1"

// BenchLoadConfig parameterizes the harness. Zero fields take
// defaults.
type BenchLoadConfig struct {
	// Nodes in the loopback cluster (default 6).
	Nodes int
	// Replication per block (default 3).
	Replication int
	// BlockSize of benchmark files (default 32 KiB).
	BlockSize int64
	// Files preloaded for the read mix (default 24; the warmup reads
	// over them also push the hedge latency tracker past MinSamples).
	Files int
	// Workers is the baseline closed-loop client count — the unloaded
	// offered load (default 4).
	Workers int
	// LoadFactor multiplies Workers for the overload cell (default 10).
	LoadFactor int
	// GrayFrac is the fraction of DataNodes turned gray in the
	// overload cell (default 0.3, rounded, at least 1, capped so
	// Replication healthy nodes remain).
	GrayFrac float64
	// GrayDelay is the injected service latency toward a gray node
	// (default 2s — far past OpTimeout, so a request that waits it out
	// burns its whole budget, exactly the gray-failure shape).
	GrayDelay time.Duration
	// OpTimeout is each request's deadline budget (default 600ms).
	OpTimeout time.Duration
	// Duration of each measurement window (default 2s).
	Duration time.Duration
	// MaxInflight is the admission concurrency limit on the NameNode
	// (default 2×Workers; DataNodes get twice that for pipeline
	// fan-out).
	MaxInflight int
	// Queue is the NameNode's bounded admission wait queue (default
	// MaxInflight+Workers). Queued waiters sleep server-side — cheap,
	// deadline-aware — so moderate excess smooths into queue waits
	// instead of shed-and-retry churn, while the bound keeps the
	// overload cell's surplus (offered load is far above
	// MaxInflight+Queue) shedding instead of buffering into collapse.
	Queue int
	// Seed drives placement, payloads, and breaker jitter (default 1).
	Seed uint64
	// Now supplies wall-clock readings; defaults to time.Now.
	Now func() time.Time
}

func (c BenchLoadConfig) withDefaults() BenchLoadConfig {
	if c.Nodes == 0 {
		c.Nodes = 6
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.BlockSize == 0 {
		c.BlockSize = 32 << 10
	}
	if c.Files == 0 {
		c.Files = 24
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 10
	}
	if c.GrayFrac == 0 {
		c.GrayFrac = 0.3
	}
	if c.GrayDelay == 0 {
		c.GrayDelay = 2 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 600 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 2 * c.Workers
	}
	if c.Queue == 0 {
		c.Queue = c.MaxInflight + c.Workers
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		//lint:ignore determinism the load harness measures wall-clock goodput by design; tests inject a virtual Now
		c.Now = time.Now
	}
	return c
}

// grayCount returns how many nodes the overload cell turns gray.
func (c BenchLoadConfig) grayCount() int {
	n := int(c.GrayFrac*float64(c.Nodes) + 0.5)
	if n < 1 {
		n = 1
	}
	if max := c.Nodes - c.Replication; n > max {
		n = max
	}
	return n
}

// BenchLoadCell is one measured load cell.
type BenchLoadCell struct {
	Name      string  `json:"name"` // "baseline" or "overload"
	Workers   int     `json:"workers"`
	GrayNodes int     `json:"grayNodes"`
	Seconds   float64 `json:"seconds"`
	// Data-plane requests (puts and gets) by outcome. Succeeded + Shed
	// + Failed == Attempted.
	Attempted  int     `json:"attempted"`
	Succeeded  int     `json:"succeeded"`
	Shed       int     `json:"shed"`   // failed with dfs.ErrOverload
	Failed     int     `json:"failed"` // failed any other way
	GoodputOps float64 `json:"goodputOpsPerSec"`
	P50MS      float64 `json:"p50ms"` // successful data-plane requests
	P99MS      float64 `json:"p99ms"`
	ShedP50MS  float64 `json:"shedP50ms"` // shed requests: how fast they failed
	ShedP99MS  float64 `json:"shedP99ms"`
	// Background requests (stat) ride along to exercise brownout; they
	// are tracked separately and never count toward goodput.
	Background     int `json:"background"`
	BackgroundShed int `json:"backgroundShed"`
	// Write-durability audit: every write the cell acknowledged is
	// read back after the window (gray injection cleared) and checked
	// byte-identical.
	AckedWrites int `json:"ackedWrites"`
	LostAcked   int `json:"lostAckedWrites"`
	// Mechanism counters observed during the cell, for the narrative:
	// what the robustness stack actually did.
	ShedsServer  int64 `json:"shedsServer"` // admission sheds, NameNode + DataNodes
	BreakerOpens int64 `json:"breakerOpens"`
	HedgedReads  int64 `json:"hedgedReads"`
	HedgeWins    int64 `json:"hedgeWins"`
}

// BenchLoadReportConfig echoes the harness parameters into the report.
type BenchLoadReportConfig struct {
	Nodes       int     `json:"nodes"`
	Replication int     `json:"replication"`
	BlockSize   int64   `json:"blockSize"`
	Files       int     `json:"files"`
	Workers     int     `json:"workers"`
	LoadFactor  int     `json:"loadFactor"`
	GrayFrac    float64 `json:"grayFrac"`
	GrayDelayMS int64   `json:"grayDelayMS"`
	OpTimeoutMS int64   `json:"opTimeoutMS"`
	DurationMS  int64   `json:"durationMS"`
	MaxInflight int     `json:"maxInflight"`
	Queue       int     `json:"queue"`
	Seed        uint64  `json:"seed"`
}

// BenchLoadReport is the BENCH_load.json document.
type BenchLoadReport struct {
	Schema     string                `json:"schema"`
	NumCPU     int                   `json:"numCPU"`
	GoMaxProcs int                   `json:"goMaxProcs"`
	Config     BenchLoadReportConfig `json:"config"`
	Baseline   BenchLoadCell         `json:"baseline"`
	Overload   BenchLoadCell         `json:"overload"`
	// GoodputRatio is overload goodput over baseline goodput — the
	// headline number, gated at 0.70 by Validate.
	GoodputRatio float64 `json:"goodputRatio"`
}

// ErrBenchLoadSchema reports a BENCH_load.json that does not match the
// schema this binary writes.
var ErrBenchLoadSchema = errors.New("svc: load report schema mismatch")

// ErrBenchLoadReport marks a load report that fails its honesty gates
// (no sheds under overload, goodput collapse, lost acked writes, slow
// sheds).
var ErrBenchLoadReport = errors.New("svc: invalid load report")

// Validate checks the report is structurally sound and that the
// overload cell met the robustness gates.
func (r *BenchLoadReport) Validate() error {
	if r.Schema != BenchLoadSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrBenchLoadSchema, r.Schema, BenchLoadSchema)
	}
	for _, cell := range []*BenchLoadCell{&r.Baseline, &r.Overload} {
		if cell.Attempted <= 0 || cell.Seconds <= 0 {
			return fmt.Errorf("%w: cell %q measured nothing", ErrBenchLoadReport, cell.Name)
		}
		if cell.Succeeded <= 0 {
			return fmt.Errorf("%w: cell %q had no successful requests", ErrBenchLoadReport, cell.Name)
		}
		if cell.Succeeded+cell.Shed+cell.Failed != cell.Attempted {
			return fmt.Errorf("%w: cell %q outcome counts do not sum: %d+%d+%d != %d",
				ErrBenchLoadReport, cell.Name, cell.Succeeded, cell.Shed, cell.Failed, cell.Attempted)
		}
	}
	if r.Overload.GrayNodes <= 0 {
		return fmt.Errorf("%w: overload cell ran with no gray nodes", ErrBenchLoadReport)
	}
	if r.Overload.Shed <= 0 {
		return fmt.Errorf("%w: %dx offered load produced no sheds — admission control is not engaging", ErrBenchLoadReport, r.Config.LoadFactor)
	}
	if r.GoodputRatio < 0.70 {
		return fmt.Errorf("%w: overload goodput is %.2fx baseline, gate is 0.70x", ErrBenchLoadReport, r.GoodputRatio)
	}
	if r.Overload.AckedWrites <= 0 {
		return fmt.Errorf("%w: overload cell acknowledged no writes", ErrBenchLoadReport)
	}
	if r.Overload.LostAcked != 0 {
		return fmt.Errorf("%w: %d acknowledged writes lost under overload", ErrBenchLoadReport, r.Overload.LostAcked)
	}
	// Sheds must fail fast: the typical shed (queue full, brownout)
	// answers immediately, and even the slowest (a queued request
	// whose budget expired waiting) never outlives its own deadline by
	// much.
	budget := float64(r.Config.OpTimeoutMS)
	if r.Overload.ShedP50MS > budget/2 {
		return fmt.Errorf("%w: median shed took %.1fms against a %dms budget — sheds are not failing fast",
			ErrBenchLoadReport, r.Overload.ShedP50MS, r.Config.OpTimeoutMS)
	}
	if r.Overload.ShedP99MS > budget*1.5 {
		return fmt.Errorf("%w: p99 shed took %.1fms against a %dms budget", ErrBenchLoadReport, r.Overload.ShedP99MS, r.Config.OpTimeoutMS)
	}
	return nil
}

// loadCluster boots one instrumented loopback cluster: admission
// control on the NameNode and every DataNode, per-node breakers, and
// hedged reads.
func loadCluster(cfg BenchLoadConfig) (*LocalCluster, *chaos.NetFaults, error) {
	c, err := cluster.New(make([]cluster.Node, cfg.Nodes))
	if err != nil {
		return nil, nil, err
	}
	faults, err := chaos.NewNetFaults(stats.NewRNG(cfg.Seed ^ 0xfa017))
	if err != nil {
		return nil, nil, err
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(cfg.Seed), faults, NameNodeConfig{
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Admission: AdmissionConfig{
			MaxInflight: cfg.MaxInflight,
			Queue:       cfg.Queue,
		},
		Breaker: BreakerConfig{
			Threshold: 2,
			// Longer than the measurement window: a gray node walled
			// off stays walled off instead of burning a probe timeout
			// per cooldown mid-cell.
			Cooldown: 2 * cfg.Duration,
			Probes:   1,
		},
		HedgeReads: true,
		Hedge: HedgeConfig{
			Quantile:   0.95,
			Multiplier: 3,
			MinDelay:   25 * time.Millisecond,
			MinSamples: 8,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	for _, dn := range lc.DNs {
		// Twice the NameNode limit: one admitted client op can fan out
		// to several pipeline/read streams across the DataNodes.
		dn.SetAdmission(AdmissionConfig{MaxInflight: 2 * cfg.MaxInflight, Queue: 2 * cfg.Queue})
	}
	return lc, faults, nil
}

// ackedWrite records one write the cluster acknowledged during the
// window, for the post-cell durability readback.
type ackedWrite struct {
	name string
	hash [32]byte
}

// loadWorkerResult accumulates one closed-loop worker's outcomes.
// Latencies are in seconds.
type loadWorkerResult struct {
	okLat, shedLat []float64
	attempted      int
	failed         int
	background     int
	bgShed         int
	acked          []ackedWrite
}

// serverSheds sums admission sheds across the NameNode and every
// DataNode.
func serverSheds(lc *LocalCluster) int64 {
	var total int64
	if st := lc.NN.Admission().Stats(); st != nil {
		total += st.Shed()
	}
	for _, dn := range lc.DNs {
		if st := dn.Admission().Stats(); st != nil {
			total += st.Shed()
		}
	}
	return total
}

// breakerOpens reads the fleet-wide breaker open count (0 when
// breakers are disabled).
func breakerOpens(lc *LocalCluster) int64 {
	if _, st := lc.NN.BreakerStates(); st != nil {
		return st.Opens.Load()
	}
	return 0
}

// runLoadCell boots a fresh instrumented cluster, preloads the read
// set, warms the hedge tracker, turns the listed nodes gray, then
// drives workers closed-loop for the window and classifies every
// request. After the window the gray injection is cleared and every
// acknowledged write is read back byte-identical.
func runLoadCell(ctx context.Context, cfg BenchLoadConfig, name string, workers int, gray []cluster.NodeID) (BenchLoadCell, error) {
	lc, faults, err := loadCluster(cfg)
	if err != nil {
		return BenchLoadCell{}, err
	}
	defer func() { _ = lc.Close(context.WithoutCancel(ctx)) }()

	// Preload the read set and warm the hedge latency tracker before
	// any gray failure or load arrives — baseline capacity is the
	// healthy cluster's.
	pre := lc.Client("load-pre")
	defer pre.Close()
	preNames := make([]string, cfg.Files)
	preHashes := make([][32]byte, cfg.Files)
	for i := range preNames {
		preNames[i] = fmt.Sprintf("load-pre-%d", i)
		data := benchPayload(cfg.BlockSize, cfg.Seed, i)
		preHashes[i] = sha256.Sum256(data)
		if _, _, err := pre.CopyFromLocal(ctx, preNames[i], data, true); err != nil {
			return BenchLoadCell{}, fmt.Errorf("svc: load preload %s: %w", preNames[i], err)
		}
	}
	for _, n := range preNames {
		if _, err := pre.ReadFile(ctx, n); err != nil {
			return BenchLoadCell{}, fmt.Errorf("svc: load warmup read %s: %w", n, err)
		}
	}

	for _, id := range gray {
		faults.SetGray(endpointName(id), cfg.GrayDelay)
	}

	resil := lc.Engine().Resilience()
	hedgeBase := resil.Snapshot()
	shedBase := serverSheds(lc)
	opensBase := breakerOpens(lc)

	results := make([]loadWorkerResult, workers)
	t0 := cfg.Now()
	deadline := t0.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			cl := lc.Client(fmt.Sprintf("load-%s-%d", name, w))
			defer cl.Close()
			g := stats.NewRNG(cfg.Seed + uint64(w)*131 + 17)
			backoff := time.Duration(0)
			for op := 0; cfg.Now().Before(deadline); op++ {
				opCtx, cancel := context.WithTimeout(ctx, cfg.OpTimeout)
				opStart := cfg.Now()
				var err error
				wrote := ackedWrite{}
				background := false
				switch {
				case op%7 == 3:
					// Background traffic rides along so brownout has
					// something to shed; it never counts toward goodput.
					background = true
					_, err = cl.Stat(opCtx, preNames[g.Uint64()%uint64(len(preNames))])
				case op%3 == 0:
					data := benchPayload(cfg.BlockSize, cfg.Seed+uint64(w)+1000, op)
					wrote = ackedWrite{
						name: fmt.Sprintf("load-%s-w%d-%d", name, w, op),
						hash: sha256.Sum256(data),
					}
					_, _, err = cl.CopyFromLocal(opCtx, wrote.name, data, true)
				default:
					idx := g.Uint64() % uint64(len(preNames))
					var got []byte
					got, err = cl.ReadFile(opCtx, preNames[idx])
					if err == nil && sha256.Sum256(got) != preHashes[idx] {
						err = fmt.Errorf("%w: read bytes differ from written for %s", errBenchRun, preNames[idx])
					}
				}
				lat := cfg.Now().Sub(opStart).Seconds()
				cancel()
				if background {
					res.background++
					if errors.Is(err, dfs.ErrOverload) {
						res.bgShed++
					}
					continue
				}
				res.attempted++
				switch {
				case err == nil:
					res.okLat = append(res.okLat, lat)
					if wrote.name != "" {
						res.acked = append(res.acked, wrote)
					}
				case errors.Is(err, dfs.ErrOverload):
					res.shedLat = append(res.shedLat, lat)
					// Exponential backoff: a shed means the cluster is
					// saturated, and immediate retries only burn CPU the
					// admitted work needs. Surplus workers converge to long
					// sleeps with occasional probes — the surplus keeps
					// getting shed (Validate requires it), cheaply.
					if backoff == 0 {
						backoff = cfg.OpTimeout / 32
					} else if backoff < cfg.OpTimeout {
						backoff *= 2
					}
					t := time.NewTimer(backoff)
					<-t.C
				default:
					res.failed++
				}
				if err == nil {
					backoff = 0
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := cfg.Now().Sub(t0).Seconds()

	cell := BenchLoadCell{Name: name, Workers: workers, GrayNodes: len(gray), Seconds: elapsed}
	var okLat, shedLat []float64
	var acked []ackedWrite
	for i := range results {
		res := &results[i]
		cell.Attempted += res.attempted
		cell.Failed += res.failed
		cell.Background += res.background
		cell.BackgroundShed += res.bgShed
		okLat = append(okLat, res.okLat...)
		shedLat = append(shedLat, res.shedLat...)
		acked = append(acked, res.acked...)
	}
	cell.Succeeded = len(okLat)
	cell.Shed = len(shedLat)
	if elapsed > 0 {
		cell.GoodputOps = float64(cell.Succeeded) / elapsed
	}
	cell.P50MS, cell.P99MS = sortedQuantiles(okLat)
	cell.ShedP50MS, cell.ShedP99MS = sortedQuantiles(shedLat)

	hedgeNow := resil.Snapshot()
	cell.HedgedReads = hedgeNow.HedgedReads - hedgeBase.HedgedReads
	cell.HedgeWins = hedgeNow.HedgeWins - hedgeBase.HedgeWins
	cell.ShedsServer = serverSheds(lc) - shedBase
	cell.BreakerOpens = breakerOpens(lc) - opensBase

	// Durability audit: with the gray injection cleared, every write
	// acknowledged during the window must read back byte-identical.
	// Replicas only ever landed on healthy nodes (a gray hop stalls
	// past the op deadline and fails), so open breakers on the gray
	// nodes cannot mask a lost write here.
	for _, id := range gray {
		faults.ClearGray(endpointName(id))
	}
	verify := lc.Client("load-verify")
	defer verify.Close()
	cell.AckedWrites = len(acked)
	for _, aw := range acked {
		rbCtx, cancel := context.WithTimeout(ctx, cfg.GrayDelay+2*cfg.OpTimeout)
		got, rerr := verify.ReadFile(rbCtx, aw.name)
		cancel()
		if rerr != nil || sha256.Sum256(got) != aw.hash {
			cell.LostAcked++
		}
	}
	return cell, nil
}

// BenchLoad runs the harness: a baseline cell at the unloaded offered
// load, then an overload cell at LoadFactor x that with GrayFrac of
// the DataNodes gray, each on a fresh cluster.
func BenchLoad(ctx context.Context, cfg BenchLoadConfig) (*BenchLoadReport, error) {
	cfg = cfg.withDefaults()
	if cfg.grayCount() < 1 || cfg.Nodes < cfg.Replication+cfg.grayCount() {
		return nil, fmt.Errorf("%w: load bench needs %d nodes for replication %d with %d gray, got %d",
			dfs.ErrBadConfig, cfg.Replication+cfg.grayCount(), cfg.Replication, cfg.grayCount(), cfg.Nodes)
	}
	report := &BenchLoadReport{
		Schema: BenchLoadSchema,
		//lint:ignore determinism the report records the host environment honestly; goodput numbers are env-dependent by nature
		NumCPU: runtime.NumCPU(),
		//lint:ignore determinism same: GOMAXPROCS is reported metadata, not a benchmark input
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config: BenchLoadReportConfig{
			Nodes:       cfg.Nodes,
			Replication: cfg.Replication,
			BlockSize:   cfg.BlockSize,
			Files:       cfg.Files,
			Workers:     cfg.Workers,
			LoadFactor:  cfg.LoadFactor,
			GrayFrac:    cfg.GrayFrac,
			GrayDelayMS: cfg.GrayDelay.Milliseconds(),
			OpTimeoutMS: cfg.OpTimeout.Milliseconds(),
			DurationMS:  cfg.Duration.Milliseconds(),
			MaxInflight: cfg.MaxInflight,
			Queue:       cfg.Queue,
			Seed:        cfg.Seed,
		},
	}

	baseline, err := runLoadCell(ctx, cfg, "baseline", cfg.Workers, nil)
	if err != nil {
		return nil, err
	}
	report.Baseline = baseline

	gray := make([]cluster.NodeID, cfg.grayCount())
	for i := range gray {
		gray[i] = cluster.NodeID(i)
	}
	overload, err := runLoadCell(ctx, cfg, "overload", cfg.Workers*cfg.LoadFactor, gray)
	if err != nil {
		return nil, err
	}
	report.Overload = overload

	if baseline.GoodputOps > 0 {
		report.GoodputRatio = overload.GoodputOps / baseline.GoodputOps
	}
	return report, nil
}

// BenchLoadText renders the load report for the terminal.
func BenchLoadText(r *BenchLoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload benchmark (%d CPU / GOMAXPROCS %d; %d nodes, replication %d, %dx load, %d gray)\n",
		r.NumCPU, r.GoMaxProcs, r.Config.Nodes, r.Config.Replication, r.Config.LoadFactor, r.Overload.GrayNodes)
	fmt.Fprintf(&b, "%-9s %7s %5s %9s %9s %7s %6s %6s %8s %8s %7s %5s\n",
		"cell", "workers", "gray", "goodput/s", "attempted", "ok", "shed", "fail", "p50 ms", "p99 ms", "acked", "lost")
	for _, cell := range []BenchLoadCell{r.Baseline, r.Overload} {
		fmt.Fprintf(&b, "%-9s %7d %5d %9.1f %9d %7d %6d %6d %8.2f %8.2f %7d %5d\n",
			cell.Name, cell.Workers, cell.GrayNodes, cell.GoodputOps, cell.Attempted,
			cell.Succeeded, cell.Shed, cell.Failed, cell.P50MS, cell.P99MS, cell.AckedWrites, cell.LostAcked)
	}
	fmt.Fprintf(&b, "goodput ratio %.2fx (gate 0.70x); overload mechanisms: server sheds=%d breaker opens=%d hedged reads=%d hedge wins=%d brownout sheds=%d/%d background\n",
		r.GoodputRatio, r.Overload.ShedsServer, r.Overload.BreakerOpens, r.Overload.HedgedReads,
		r.Overload.HedgeWins, r.Overload.BackgroundShed, r.Overload.Background)
	return b.String()
}

// sortedQuantiles sorts latencies (seconds) in place and returns
// (p50, p99) in milliseconds.
func sortedQuantiles(lat []float64) (float64, float64) {
	sort.Float64s(lat)
	return quantileMS(lat, 0.50), quantileMS(lat, 0.99)
}

package svc

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestOverloadSoak is the headline robustness claim: at several times
// the unloaded offered load, with a fraction of the DataNodes gray
// (alive heartbeats, crawling service), the cluster keeps goodput
// within the gated factor of its unloaded capacity, every shed fails
// fast with the overload taxonomy, and no acknowledged write is lost.
// The BenchLoad harness runs both cells and its Validate() carries the
// gates; the extra asserts here pin the mechanisms that must have
// engaged to get there.
func TestOverloadSoak(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := BenchLoad(ctx, BenchLoadConfig{
		Nodes:       6,
		Replication: 3,
		BlockSize:   8 << 10,
		Files:       12,
		Workers:     3,
		LoadFactor:  8,
		GrayFrac:    0.3,
		GrayDelay:   1500 * time.Millisecond,
		OpTimeout:   300 * time.Millisecond,
		Duration:    2 * time.Second,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, BenchLoadText(rep))
	}
	if rep.Overload.BreakerOpens == 0 {
		t.Errorf("no breaker ever opened: gray nodes were never walled off\n%s", BenchLoadText(rep))
	}
	if rep.Overload.ShedsServer == 0 {
		t.Errorf("server-side admission counted no sheds\n%s", BenchLoadText(rep))
	}
	// The report must survive its own serialization: the committed
	// BENCH_load.json is validated after a JSON round trip.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchLoadReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("report does not survive a JSON round trip: %v", err)
	}
	t.Logf("\n%s", BenchLoadText(rep))
}

// validLoadReport fabricates a report that passes every gate, for the
// Validate tests to break one gate at a time.
func validLoadReport() *BenchLoadReport {
	cell := func(name string, gray int) BenchLoadCell {
		return BenchLoadCell{
			Name: name, Workers: 4, GrayNodes: gray, Seconds: 2,
			Attempted: 100, Succeeded: 80, Shed: 15, Failed: 5,
			GoodputOps: 40, ShedP50MS: 1, ShedP99MS: 50,
			AckedWrites: 20, LostAcked: 0,
		}
	}
	r := &BenchLoadReport{
		Schema:   BenchLoadSchema,
		Config:   BenchLoadReportConfig{LoadFactor: 10, OpTimeoutMS: 600},
		Baseline: cell("baseline", 0),
		Overload: cell("overload", 2),
	}
	r.GoodputRatio = 0.85
	return r
}

func TestBenchLoadValidateGates(t *testing.T) {
	if err := validLoadReport().Validate(); err != nil {
		t.Fatalf("fabricated-valid report rejected: %v", err)
	}
	cases := []struct {
		name  string
		mutl  func(*BenchLoadReport)
		want  error
		wantS string
	}{
		{"schema", func(r *BenchLoadReport) { r.Schema = "adapt-bench-load/v0" }, ErrBenchLoadSchema, ""},
		{"nothing measured", func(r *BenchLoadReport) { r.Baseline.Attempted = 0 }, ErrBenchLoadReport, "measured nothing"},
		{"no successes", func(r *BenchLoadReport) { r.Overload.Succeeded = 0; r.Overload.Failed = 85 }, ErrBenchLoadReport, "no successful"},
		{"counts do not sum", func(r *BenchLoadReport) { r.Overload.Failed = 6 }, ErrBenchLoadReport, "do not sum"},
		{"no gray nodes", func(r *BenchLoadReport) { r.Overload.GrayNodes = 0 }, ErrBenchLoadReport, "no gray nodes"},
		{"no sheds", func(r *BenchLoadReport) { r.Overload.Shed = 0; r.Overload.Succeeded = 95 }, ErrBenchLoadReport, "no sheds"},
		{"goodput collapse", func(r *BenchLoadReport) { r.GoodputRatio = 0.69 }, ErrBenchLoadReport, "gate is 0.70x"},
		{"no acked writes", func(r *BenchLoadReport) { r.Overload.AckedWrites = 0 }, ErrBenchLoadReport, "acknowledged no writes"},
		{"lost acked write", func(r *BenchLoadReport) { r.Overload.LostAcked = 1 }, ErrBenchLoadReport, "lost"},
		{"slow median shed", func(r *BenchLoadReport) { r.Overload.ShedP50MS = 400 }, ErrBenchLoadReport, "not failing fast"},
		{"slow p99 shed", func(r *BenchLoadReport) { r.Overload.ShedP99MS = 1000 }, ErrBenchLoadReport, "p99 shed"},
	}
	for _, tc := range cases {
		r := validLoadReport()
		tc.mutl(r)
		err := r.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
			continue
		}
		if tc.wantS != "" && !strings.Contains(err.Error(), tc.wantS) {
			t.Errorf("%s: err %q does not mention %q", tc.name, err, tc.wantS)
		}
	}
}

func TestBenchLoadGrayCount(t *testing.T) {
	cases := []struct {
		nodes int
		frac  float64
		repl  int
		want  int
	}{
		{6, 0.3, 3, 2},  // rounds 1.8 up
		{6, 0.01, 3, 1}, // at least one
		{4, 0.9, 3, 1},  // capped: replication needs 3 healthy
		{10, 0.5, 3, 5},
	}
	for _, tc := range cases {
		c := BenchLoadConfig{Nodes: tc.nodes, GrayFrac: tc.frac, Replication: tc.repl}
		if got := c.grayCount(); got != tc.want {
			t.Errorf("grayCount(%d nodes, %.2f, repl %d) = %d, want %d", tc.nodes, tc.frac, tc.repl, got, tc.want)
		}
	}
}

func TestBenchLoadRejectsImpossibleTopology(t *testing.T) {
	ctx := context.Background()
	_, err := BenchLoad(ctx, BenchLoadConfig{Nodes: 3, Replication: 3, GrayFrac: 0.5})
	if err == nil {
		t.Fatal("3 nodes with replication 3 plus gray accepted")
	}
}

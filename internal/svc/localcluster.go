package svc

import (
	"context"
	"fmt"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// LocalCluster is a full networked ADAPT cluster on loopback: one
// NameNode service and one DataNode service per cluster node, all on
// real TCP sockets bound to 127.0.0.1:0. It exists for tests, the CLI
// demo, and CI smoke runs — the topology is real (frames, deadlines,
// partitions all cross actual sockets), only the machines are
// imaginary.
//
// LocalCluster satisfies the chaos engine's Target and Observer
// contracts (structurally — chaos does not know svc): SetNodeUp flips
// the physical DataNode under the named service, and the Observe
// methods route availability observations to that DataNode's own
// recorder, so estimates reach the NameNode exclusively through
// heartbeats on the wire.
type LocalCluster struct {
	NN     *NameNodeServer
	DNs    []*DataNodeServer
	faults TransportFaults
}

// StartLocalCluster boots one DataNode service per node of c plus the
// NameNode service, all on loopback. faults may be nil; when it is a
// *chaos.NetFaults shared with test code, partitions and drops apply
// to every connection in the cluster.
func StartLocalCluster(c *cluster.Cluster, g *stats.RNG, faults TransportFaults, cfg NameNodeConfig) (*LocalCluster, error) {
	lc := &LocalCluster{faults: faults}
	dnAddrs := make([]string, c.Len())
	for i := 0; i < c.Len(); i++ {
		dn := NewDataNodeServer(cluster.NodeID(i), faults)
		if err := dn.Listen("127.0.0.1:0"); err != nil {
			lc.teardown()
			return nil, err
		}
		lc.DNs = append(lc.DNs, dn)
		dnAddrs[i] = dn.Addr()
	}
	nn, err := NewNameNodeServer(c, dnAddrs, g, faults, cfg)
	if err != nil {
		lc.teardown()
		return nil, err
	}
	if err := nn.Listen("127.0.0.1:0"); err != nil {
		lc.teardown()
		return nil, err
	}
	lc.NN = nn
	for _, dn := range lc.DNs {
		dn.ConnectNameNode(nn.Addr())
	}
	return lc, nil
}

// teardown force-closes whatever has started (boot failure path).
func (lc *LocalCluster) teardown() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-cancelled: close immediately, no drain
	for _, dn := range lc.DNs {
		_ = dn.srv.Shutdown(ctx)
	}
	if lc.NN != nil {
		_ = lc.NN.Shutdown(ctx)
	}
}

// Client returns a shell client for the cluster's NameNode under the
// given endpoint name.
func (lc *LocalCluster) Client(name string) *Client {
	return Dial(lc.NN.Addr(), name, lc.faults)
}

// DataNode returns the service for one node id.
func (lc *LocalCluster) DataNode(id cluster.NodeID) (*DataNodeServer, error) {
	if int(id) < 0 || int(id) >= len(lc.DNs) {
		return nil, fmt.Errorf("%w: node %d", ErrUnknownDataNode, id)
	}
	return lc.DNs[id], nil
}

// SetNodeUp flips the physical up state of one DataNode — the chaos
// engine's churn hook. The NameNode is not told: it finds out the way
// a real master does, by RPCs failing and heartbeats arriving.
func (lc *LocalCluster) SetNodeUp(id cluster.NodeID, up bool) error {
	dn, err := lc.DataNode(id)
	if err != nil {
		return err
	}
	dn.Node().SetUp(up)
	return nil
}

// ObserveUptime routes an availability observation to the node's own
// recorder — the chaos engine's observer hook. The observation
// reaches the NameNode only when the node heartbeats.
func (lc *LocalCluster) ObserveUptime(id cluster.NodeID, d float64) error {
	dn, err := lc.DataNode(id)
	if err != nil {
		return err
	}
	return dn.ObserveUptime(d)
}

// ObserveInterruption routes one interruption observation to the
// node's own recorder.
func (lc *LocalCluster) ObserveInterruption(id cluster.NodeID, downtime float64) error {
	dn, err := lc.DataNode(id)
	if err != nil {
		return err
	}
	return dn.ObserveInterruption(downtime)
}

// FlushHeartbeats makes every DataNode send one heartbeat now —
// deterministic test alternative to the wall-clock loops.
func (lc *LocalCluster) FlushHeartbeats(ctx context.Context) error {
	for _, dn := range lc.DNs {
		if err := dn.FlushHeartbeat(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CrashNameNode kills the master the way SIGKILL would: no drain, no
// final WAL sync, connections dropped mid-frame. The DataNodes keep
// running (and heartbeating into the void) until RestartNameNode
// gives them a new master.
func (lc *LocalCluster) CrashNameNode() {
	if lc.NN != nil {
		lc.NN.Crash()
	}
}

// RestartNameNode boots a fresh NameNode incarnation — recovering the
// namespace from cfg.WALDir when set — on a new loopback port and
// repoints every DataNode's heartbeat channel at it. The caller
// supplies the same cluster shape and an RNG; heartbeat state needs
// no persistence because DataNodes resend cumulative totals, which
// the fresh estimator folds in full on their first beat.
func (lc *LocalCluster) RestartNameNode(c *cluster.Cluster, g *stats.RNG, cfg NameNodeConfig) error {
	dnAddrs := make([]string, len(lc.DNs))
	for i, dn := range lc.DNs {
		dnAddrs[i] = dn.Addr()
	}
	nn, err := NewNameNodeServer(c, dnAddrs, g, lc.faults, cfg)
	if err != nil {
		return err
	}
	if err := nn.Listen("127.0.0.1:0"); err != nil {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = nn.Shutdown(ctx)
		return err
	}
	lc.NN = nn
	for _, dn := range lc.DNs {
		dn.ConnectNameNode(nn.Addr())
	}
	return nil
}

// Close shuts the whole cluster down gracefully, DataNodes first so
// their final heartbeats land on a live NameNode, then the NameNode.
func (lc *LocalCluster) Close(ctx context.Context) error {
	var firstErr error
	for _, dn := range lc.DNs {
		if err := dn.Stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if lc.NN != nil {
		if err := lc.NN.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Engine exposes the NameNode's dfs engine for test assertions.
func (lc *LocalCluster) Engine() *dfs.NameNode { return lc.NN.Engine() }

package svc

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
	"github.com/adaptsim/adapt/internal/wal"
)

// The metadata benchmark: the same multi-tenant create/delete
// workload, with churn, run against the sharded namespace at several
// shard counts, each shard journaling to its own WAL directory. Every
// shard count ends with a kill -9 (Crash on every journal) followed
// by a double replay, so the report carries both the scaling claim
// (metadata ops/sec vs shards) and the safety claim (per-shard
// bit-deterministic recovery, zero acked mutations lost). It marshals
// to the schema-stable BENCH_meta.json.

// BenchMetaSchema identifies the BENCH_meta.json layout. Bump only on
// incompatible changes; trajectory tooling keys on it.
const BenchMetaSchema = "adapt-bench-meta/v1"

// BenchMetaConfig parameterizes the metadata benchmark. Zero fields
// take defaults sized for a CI smoke run.
type BenchMetaConfig struct {
	// Shards are the namespace shard counts to sweep (default
	// 1, 2, 4, 8). The first entry is the speedup baseline.
	Shards []int
	// Ops is the total metadata operations per shard count (default
	// 800). Roughly 1/4 are deletes, the rest creates.
	Ops int
	// Workers is the number of concurrent clients (default 8).
	Workers int
	// Nodes is the DataNode count (default 8).
	Nodes int
	// Tenants is how many "@tN/" tenant namespaces the workload
	// spreads files over (default 4).
	Tenants int
	// FileSize is the logical file size in bytes (default 512 —
	// metadata-dominated on purpose).
	FileSize int
	// AppendDelay models the journal device's per-fsync latency
	// (default 500µs). Injected through the WAL fault hook so the
	// benchmark measures journaled metadata ops even when the
	// filesystem's real fsync is free (tmpfs), which would otherwise
	// let unrelated constant costs mask the shard scaling.
	AppendDelay time.Duration
	// ChurnEvery injects one liveness flip per this many operations
	// (default 64): the longest-down node revives and another goes
	// down, so the workload always runs under churn but placement
	// never starves.
	ChurnEvery int
	// Seed is the root seed (default 1).
	Seed uint64
	// Now supplies wall-clock readings; defaults to time.Now. Tests
	// inject a fake clock to keep assertions deterministic.
	Now func() time.Time
}

func (c BenchMetaConfig) withDefaults() BenchMetaConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Ops == 0 {
		c.Ops = 800
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.FileSize == 0 {
		c.FileSize = 512
	}
	if c.AppendDelay == 0 {
		c.AppendDelay = 500 * time.Microsecond
	}
	if c.ChurnEvery == 0 {
		c.ChurnEvery = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BenchMetaRun is one measured shard count.
type BenchMetaRun struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Ops is the number of acknowledged metadata mutations (creates +
	// deletes) the measured window completed.
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"opsPerSec"`
	// Speedup is this run's throughput over the first shard count's.
	Speedup float64 `json:"speedupVsBaseline"`
	// Churns is how many liveness flips the workload ran under.
	Churns int `json:"churns"`
	// AckedFiles is how many files the workload left acknowledged at
	// crash time; LostAcked counts those missing (or corrupt) after
	// replay and must be zero.
	AckedFiles int `json:"ackedFiles"`
	LostAcked  int `json:"lostAcked"`
	// ReplayDeterministic reports that two independent replays of
	// every shard's log produced bit-identical per-shard fingerprints.
	ReplayDeterministic bool `json:"replayDeterministic"`
	// ShardSeqs is each shard journal's committed sequence at crash —
	// evidence the workload actually spread across journals.
	ShardSeqs []uint64 `json:"shardSeqs"`
}

// BenchMetaReportConfig echoes the harness parameters into the report.
type BenchMetaReportConfig struct {
	Shards      []int   `json:"shards"`
	Ops         int     `json:"ops"`
	Workers     int     `json:"workers"`
	Nodes       int     `json:"nodes"`
	Tenants     int     `json:"tenants"`
	FileSize    int     `json:"fileSize"`
	AppendDelay float64 `json:"appendDelaySeconds"`
	ChurnEvery  int     `json:"churnEvery"`
	Seed        uint64  `json:"seed"`
}

// BenchMetaReport is the BENCH_meta.json document.
type BenchMetaReport struct {
	Schema     string                `json:"schema"`
	NumCPU     int                   `json:"numCPU"`
	GoMaxProcs int                   `json:"goMaxProcs"`
	Config     BenchMetaReportConfig `json:"config"`
	Runs       []BenchMetaRun        `json:"runs"`
}

// ErrBenchMetaSchema reports a BENCH_meta.json that does not match
// the schema this binary writes.
var ErrBenchMetaSchema = errors.New("svc: meta bench report schema mismatch")

// ErrBenchMetaReport marks a meta bench report that fails its honesty
// checks: no work measured, a shard that journaled nothing, replay
// divergence, or lost acked mutations.
var ErrBenchMetaReport = errors.New("svc: invalid meta bench report")

// Validate checks the report is structurally sound and its safety
// claims hold: right schema, non-empty runs, every run's recovery
// bit-deterministic with zero acked mutations lost, and the workload
// actually sharded (every journal of a multi-shard run committed
// records).
func (r *BenchMetaReport) Validate() error {
	if r.Schema != BenchMetaSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrBenchMetaSchema, r.Schema, BenchMetaSchema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("%w: no runs", ErrBenchMetaReport)
	}
	for i, run := range r.Runs {
		if run.Shards <= 0 || run.Ops <= 0 || run.Workers <= 0 {
			return fmt.Errorf("%w: run %d has non-positive coordinates: %+v", ErrBenchMetaReport, i, run)
		}
		if run.Seconds <= 0 || run.OpsPerSec <= 0 {
			return fmt.Errorf("%w: run %d measured no work", ErrBenchMetaReport, i)
		}
		if !run.ReplayDeterministic {
			return fmt.Errorf("%w: run %d (shards=%d): replay not bit-deterministic", ErrBenchMetaReport, i, run.Shards)
		}
		if run.LostAcked != 0 {
			return fmt.Errorf("%w: run %d (shards=%d): %d acked mutations lost", ErrBenchMetaReport, i, run.Shards, run.LostAcked)
		}
		if len(run.ShardSeqs) != run.Shards {
			return fmt.Errorf("%w: run %d: %d shard seqs for %d shards", ErrBenchMetaReport, i, len(run.ShardSeqs), run.Shards)
		}
		for s, seq := range run.ShardSeqs {
			if seq == 0 {
				return fmt.Errorf("%w: run %d: shard %d journaled nothing; the sweep proves nothing", ErrBenchMetaReport, i, s)
			}
		}
	}
	return nil
}

// CheckScaling enforces the throughput claim: the run at `shards`
// must reach at least `factor` times the ops/sec of the run at one
// shard. This is the bench-meta-smoke CI gate.
func (r *BenchMetaReport) CheckScaling(shards int, factor float64) error {
	var base, target *BenchMetaRun
	for i := range r.Runs {
		switch r.Runs[i].Shards {
		case 1:
			base = &r.Runs[i]
		case shards:
			target = &r.Runs[i]
		}
	}
	if base == nil || target == nil {
		return fmt.Errorf("%w: report lacks shards=1 and shards=%d runs", ErrBenchMetaReport, shards)
	}
	if target.OpsPerSec < factor*base.OpsPerSec {
		return fmt.Errorf("%w: shards=%d reached %.0f ops/sec, below %.1fx the shards=1 baseline %.0f",
			ErrBenchMetaReport, shards, target.OpsPerSec, factor, base.OpsPerSec)
	}
	return nil
}

// appendDelayFaults models journal device latency: every append
// sleeps the configured delay, then proceeds untorn.
type appendDelayFaults struct{ d time.Duration }

func (f appendDelayFaults) BeforeAppend(frame []byte) (int, error) {
	//lint:ignore determinism the modeled journal-device latency IS the benchmark's load; only wall-clock throughput depends on it, never replayed state
	time.Sleep(f.d)
	return len(frame), nil
}

// BenchMeta runs the metadata benchmark sweep.
func BenchMeta(cfg BenchMetaConfig) (*BenchMetaReport, error) {
	cfg = cfg.withDefaults()
	report := &BenchMetaReport{
		Schema:     BenchMetaSchema,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config: BenchMetaReportConfig{
			Shards:      cfg.Shards,
			Ops:         cfg.Ops,
			Workers:     cfg.Workers,
			Nodes:       cfg.Nodes,
			Tenants:     cfg.Tenants,
			FileSize:    cfg.FileSize,
			AppendDelay: cfg.AppendDelay.Seconds(),
			ChurnEvery:  cfg.ChurnEvery,
			Seed:        cfg.Seed,
		},
	}
	var baseOpsPerSec float64
	for i, shards := range cfg.Shards {
		run, err := benchMetaOne(cfg, shards)
		if err != nil {
			return nil, fmt.Errorf("svc: meta bench shards=%d: %w", shards, err)
		}
		if i == 0 {
			baseOpsPerSec = run.OpsPerSec
		}
		if baseOpsPerSec > 0 {
			run.Speedup = run.OpsPerSec / baseOpsPerSec
		}
		report.Runs = append(report.Runs, *run)
	}
	return report, nil
}

// benchMetaOne measures one shard count: build a sharded NameNode
// journaling under a fresh root, run the workload, crash, replay
// twice, compare.
func benchMetaOne(cfg BenchMetaConfig, shards int) (*BenchMetaRun, error) {
	root, err := os.MkdirTemp("", "adapt-meta-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	c, err := cluster.New(make([]cluster.Node, cfg.Nodes))
	if err != nil {
		return nil, err
	}
	nn, err := dfs.NewNameNodeSharded(c, nil, shards)
	if err != nil {
		return nil, err
	}
	dirs, err := wal.ShardDirs(root, shards)
	if err != nil {
		return nil, err
	}
	journals := make([]*walJournal, len(dirs))
	hooks := make([]dfs.Journal, len(dirs))
	for i, dir := range dirs {
		j, files, err := openJournal(dir)
		if err != nil {
			return nil, err
		}
		if err := nn.RestoreShard(i, files); err != nil {
			return nil, err
		}
		j.log.SetFaults(appendDelayFaults{d: cfg.AppendDelay})
		journals[i] = j
		hooks[i] = j
	}
	if err := nn.SetShardJournals(hooks); err != nil {
		return nil, err
	}

	// The workload: Workers concurrent clients, each running its slice
	// of Ops against its own tenant-prefixed names. Every 4th op
	// deletes the worker's oldest live file; the rest create. A global
	// op counter drives churn so the flip schedule depends on progress,
	// not timers.
	g := stats.NewRNG(cfg.Seed)
	var opCounter atomic.Int64
	var churns atomic.Int64
	var churnMu sync.Mutex
	downNode := -1
	churn := func() {
		churnMu.Lock()
		defer churnMu.Unlock()
		if downNode >= 0 {
			_ = nn.SetNodeUp(cluster.NodeID(downNode), true)
		}
		downNode = (downNode + 1 + int(churns.Load())) % cfg.Nodes
		_ = nn.SetNodeUp(cluster.NodeID(downNode), false)
		churns.Add(1)
	}

	type ackedFile struct {
		name string
		size int
	}
	perWorker := make([][]ackedFile, cfg.Workers)
	errs := make([]error, cfg.Workers)
	payload := func(seed int) []byte {
		data := make([]byte, cfg.FileSize)
		for j := range data {
			data[j] = byte((seed*131 + j*7) % 251)
		}
		return data
	}

	start := cfg.Now()
	var wg sync.WaitGroup
	opsPerWorker := cfg.Ops / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int, g *stats.RNG) {
			defer wg.Done()
			cl, err := dfs.NewClient(nn, g)
			if err != nil {
				errs[w] = err
				return
			}
			cl.BlockSize = int64(cfg.FileSize)
			cl.Replication = 2
			var live []ackedFile
			for op := 0; op < opsPerWorker; op++ {
				if n := opCounter.Add(1); n%int64(cfg.ChurnEvery) == 0 {
					churn()
				}
				if op%4 == 3 && len(live) > 0 {
					victim := live[0]
					if err := nn.Delete(victim.name); err != nil {
						errs[w] = fmt.Errorf("delete %q: %w", victim.name, err)
						return
					}
					live = live[1:]
					continue
				}
				name := fmt.Sprintf("@t%d/w%d-f%06d", w%cfg.Tenants, w, op)
				data := payload(w*100000 + op)
				if _, err := cl.CopyFromLocal(name, data, op%2 == 0); err != nil {
					errs[w] = fmt.Errorf("create %q: %w", name, err)
					return
				}
				live = append(live, ackedFile{name: name, size: len(data)})
			}
			perWorker[w] = live
		}(w, g.Split())
	}
	wg.Wait()
	seconds := cfg.Now().Sub(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	run := &BenchMetaRun{
		Shards:  shards,
		Workers: cfg.Workers,
		Ops:     opsPerWorker * cfg.Workers,
		Seconds: seconds,
		Churns:  int(churns.Load()),
	}
	if seconds > 0 {
		run.OpsPerSec = float64(run.Ops) / seconds
	}

	// kill -9: abandon every journal handle without a final sync, then
	// prove recovery from what is on disk.
	liveFP := make([]string, shards)
	for i := range liveFP {
		liveFP[i] = nn.FingerprintShard(i)
	}
	for _, j := range journals {
		j.log.Crash()
	}
	rec1, err := RecoverShards(root, shards)
	if err != nil {
		return nil, fmt.Errorf("first replay: %w", err)
	}
	rec2, err := RecoverShards(root, shards)
	if err != nil {
		return nil, fmt.Errorf("second replay: %w", err)
	}
	run.ReplayDeterministic = true
	run.ShardSeqs = make([]uint64, shards)
	for i := 0; i < shards; i++ {
		run.ShardSeqs[i] = journals[i].log.Seq()
		fp1, fp2 := dfs.FingerprintFiles(rec1[i]), dfs.FingerprintFiles(rec2[i])
		if fp1 != fp2 || fp1 != liveFP[i] {
			run.ReplayDeterministic = false
		}
	}

	// Zero acked mutations lost: every file acked live at crash time
	// must be present in the replayed image with its exact size.
	recovered := make(map[string]int64)
	for _, files := range rec1 {
		for _, fm := range files {
			recovered[fm.Name] = fm.Size
		}
	}
	for w := range perWorker {
		run.AckedFiles += len(perWorker[w])
		for _, f := range perWorker[w] {
			if size, ok := recovered[f.name]; !ok || size != int64(f.size) {
				run.LostAcked++
			}
		}
	}
	return run, nil
}

// BenchMetaText renders the report for the terminal.
func BenchMetaText(r *BenchMetaReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Sharded namespace metadata benchmark (%d CPU / GOMAXPROCS %d)\n", r.NumCPU, r.GoMaxProcs)
	fmt.Fprintf(&b, "%d workers, %d nodes, %d tenants, %v simulated fsync, churn every %d ops\n",
		r.Config.Workers, r.Config.Nodes, r.Config.Tenants,
		time.Duration(r.Config.AppendDelay*float64(time.Second)), r.Config.ChurnEvery)
	fmt.Fprintf(&b, "%8s %8s %9s %11s %9s %8s %7s %12s\n",
		"shards", "ops", "seconds", "ops/sec", "speedup", "churns", "lost", "replay")
	for _, run := range r.Runs {
		replay := "identical"
		if !run.ReplayDeterministic {
			replay = "DIVERGED"
		}
		fmt.Fprintf(&b, "%8d %8d %9.3f %11.1f %8.2fx %8d %7d %12s\n",
			run.Shards, run.Ops, run.Seconds, run.OpsPerSec, run.Speedup, run.Churns, run.LostAcked, replay)
	}
	return b.String()
}

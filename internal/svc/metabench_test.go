package svc

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestBenchMetaSmoke runs a small sweep end to end: the report must
// validate (per-shard replay determinism, zero lost acks, every
// journal busy) and the sharded run must out-run the single-shard
// baseline.
func TestBenchMetaSmoke(t *testing.T) {
	r, err := BenchMeta(BenchMetaConfig{Shards: []int{1, 4}, Ops: 160, Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 || r.Runs[0].Shards != 1 || r.Runs[1].Shards != 4 {
		t.Fatalf("runs = %+v", r.Runs)
	}
	for _, run := range r.Runs {
		if run.Churns == 0 {
			t.Fatalf("shards=%d ran without churn", run.Shards)
		}
		if run.AckedFiles == 0 {
			t.Fatalf("shards=%d acked nothing", run.Shards)
		}
	}
	if r.Runs[1].OpsPerSec <= r.Runs[0].OpsPerSec {
		t.Fatalf("4 shards (%.0f ops/sec) not faster than 1 (%.0f)",
			r.Runs[1].OpsPerSec, r.Runs[0].OpsPerSec)
	}
	if out := BenchMetaText(r); !strings.Contains(out, "identical") {
		t.Fatalf("text table missing replay column:\n%s", out)
	}
}

// TestBenchMetaSchemaStable pins the JSON layout the trajectory
// tooling keys on.
func TestBenchMetaSchemaStable(t *testing.T) {
	r := &BenchMetaReport{
		Schema: BenchMetaSchema,
		Runs: []BenchMetaRun{{
			Shards: 1, Workers: 2, Ops: 10, Seconds: 0.5, OpsPerSec: 20,
			Speedup: 1, Churns: 1, AckedFiles: 8,
			ReplayDeterministic: true, ShardSeqs: []uint64{12},
		}},
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema":"` + BenchMetaSchema + `"`, `"shards":1`, `"opsPerSec":20`,
		`"speedupVsBaseline":1`, `"lostAcked":0`, `"replayDeterministic":true`,
		`"shardSeqs":[12]`,
	} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("marshalled report missing %s:\n%s", key, buf)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBenchMetaValidateRejects covers the honesty checks.
func TestBenchMetaValidateRejects(t *testing.T) {
	good := func() *BenchMetaReport {
		return &BenchMetaReport{
			Schema: BenchMetaSchema,
			Runs: []BenchMetaRun{
				{Shards: 1, Workers: 2, Ops: 10, Seconds: 1, OpsPerSec: 10, ReplayDeterministic: true, ShardSeqs: []uint64{5}},
				{Shards: 4, Workers: 2, Ops: 10, Seconds: 0.25, OpsPerSec: 40, ReplayDeterministic: true, ShardSeqs: []uint64{2, 1, 1, 1}},
			},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatal(err)
	}

	bad := good()
	bad.Schema = "other/v9"
	if err := bad.Validate(); !errors.Is(err, ErrBenchMetaSchema) {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
	bad = good()
	bad.Runs[1].LostAcked = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("lost acked write not rejected")
	}
	bad = good()
	bad.Runs[0].ReplayDeterministic = false
	if err := bad.Validate(); err == nil {
		t.Fatal("nondeterministic replay not rejected")
	}
	bad = good()
	bad.Runs[1].ShardSeqs[2] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("idle shard journal not rejected")
	}

	if err := good().CheckScaling(4, 2); err != nil {
		t.Fatal(err)
	}
	slow := good()
	slow.Runs[1].OpsPerSec = 15
	if err := slow.CheckScaling(4, 2); err == nil {
		t.Fatal("sub-2x scaling not rejected")
	}
	if err := good().CheckScaling(8, 2); err == nil {
		t.Fatal("missing shard count not rejected")
	}
}

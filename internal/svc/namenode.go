package svc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/model"
	"github.com/adaptsim/adapt/internal/stats"
)

// Op RPC params/results (the shell surface of §IV-A over the wire).
type copyParams struct {
	Name  string `json:"name"`
	Data  []byte `json:"data"`
	Adapt bool   `json:"adapt"`
}

type copyResult struct {
	Meta   *dfs.FileMeta   `json:"meta"`
	Report dfs.WriteReport `json:"report"`
}

type cpParams struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Adapt bool   `json:"adapt"`
}

type nameParams struct {
	Name string `json:"name"`
}

type readResult struct {
	Data []byte `json:"data"`
}

type listResult struct {
	Files []string `json:"files"`
}

type movedResult struct {
	Moved int `json:"moved"`
}

type distResult struct {
	Counts []int `json:"counts"`
}

type maintainParams struct {
	Name  string `json:"name"`
	Adapt bool   `json:"adapt"`
}

type estimatesResult struct {
	Estimates map[cluster.NodeID]model.Availability `json:"estimates"`
}

// hbState is the NameNode's per-DataNode heartbeat bookkeeping: the
// last sequence folded and the cumulative totals it carried, so the
// next beat folds only the delta.
type hbState struct {
	seq           uint64
	uptime        float64
	interruptions int64
	downtime      float64
	lastBeat      time.Time
}

// NameNodeServer is the networked ADAPT master: file metadata, the
// block distributor, and the performance predictor behind a frame
// server. It is a transport shell over dfs.NameNode + dfs.Client
// running on remoteStore proxies, so every operation — placement,
// replica failover, crash-consistent redistribution — is the engine
// code the in-process tests certify, now spanning TCP.
//
// Heartbeats close the predictor loop: each beat's cumulative totals
// are diffed against the last folded state, the delta feeds
// cluster.HeartbeatEstimator, and RefreshAvailability rewrites the
// per-node (λ, μ) that the 1/E[T] placement weights read. availMu
// orders those rewrites against concurrent placements: folds take the
// write side, operations that build policies or walk cluster state
// take the read side.
type NameNodeServer struct {
	nn     *dfs.NameNode
	cl     *dfs.Client
	srv    *Server
	stores []*remoteStore
	start  time.Time

	availMu sync.RWMutex

	hbMu sync.Mutex
	hb   map[cluster.NodeID]*hbState
}

// NameNodeConfig tunes the service's client engine. Zero values keep
// the dfs defaults.
type NameNodeConfig struct {
	BlockSize   int64
	Replication int
	Gamma       float64
}

// NewNameNodeServer creates the master for cluster c whose DataNodes
// serve blocks at dnAddrs (indexed by NodeID; length must equal
// c.Len()). The RNG drives placement randomness. faults may be nil.
func NewNameNodeServer(c *cluster.Cluster, dnAddrs []string, g *stats.RNG, faults TransportFaults, cfg NameNodeConfig) (*NameNodeServer, error) {
	if len(dnAddrs) != c.Len() {
		return nil, fmt.Errorf("svc: %d datanode addrs for %d nodes: %w", len(dnAddrs), c.Len(), dfs.ErrUnknownNode)
	}
	stores := make([]*remoteStore, c.Len())
	ifaces := make([]dfs.BlockStore, c.Len())
	for i := range stores {
		id := cluster.NodeID(i)
		stores[i] = newRemoteStore(id, dnAddrs[i], "namenode", endpointName(id), faults)
		ifaces[i] = stores[i]
	}
	nn, err := dfs.NewNameNodeWithStores(c, ifaces)
	if err != nil {
		return nil, err
	}
	cl, err := dfs.NewClient(nn, g)
	if err != nil {
		return nil, err
	}
	if cfg.BlockSize > 0 {
		cl.BlockSize = cfg.BlockSize
	}
	if cfg.Replication > 0 {
		cl.Replication = cfg.Replication
	}
	if cfg.Gamma > 0 {
		cl.Gamma = cfg.Gamma
	}
	s := &NameNodeServer{
		nn:     nn,
		cl:     cl,
		stores: stores,
		start:  time.Now(),
		hb:     make(map[cluster.NodeID]*hbState),
	}
	s.srv = NewServer("namenode", faults, s.handle)
	return s, nil
}

// Listen binds the metadata service.
func (s *NameNodeServer) Listen(addr string) error { return s.srv.Listen(addr) }

// Addr returns the bound service address.
func (s *NameNodeServer) Addr() string { return s.srv.Addr() }

// Engine exposes the underlying dfs.NameNode (counters, consistency
// checks in tests).
func (s *NameNodeServer) Engine() *dfs.NameNode { return s.nn }

// Shutdown drains in-flight RPCs (bounded by ctx) and closes the
// DataNode proxy connections.
func (s *NameNodeServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	for _, st := range s.stores {
		st.close()
	}
	return err
}

func (s *NameNodeServer) handle(ctx context.Context, from, method string, params []byte) (any, error) {
	switch method {
	case "nn.heartbeat":
		var p heartbeatParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := s.foldHeartbeat(p); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "nn.copyFromLocal":
		var p copyParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		fm, report, err := s.cl.CopyFromLocalReportContext(ctx, p.Name, p.Data, p.Adapt)
		if err != nil {
			return nil, err
		}
		return copyResult{Meta: fm, Report: report}, nil
	case "nn.cp":
		var p cpParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return s.cl.CpContext(ctx, p.Src, p.Dst, p.Adapt)
	case "nn.read":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		data, err := s.cl.ReadFileContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return readResult{Data: data}, nil
	case "nn.stat":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		return s.nn.Stat(p.Name)
	case "nn.list":
		return listResult{Files: s.nn.List()}, nil
	case "nn.delete":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := s.nn.DeleteContext(ctx, p.Name); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "nn.adapt":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		moved, err := s.cl.AdaptContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return movedResult{Moved: moved}, nil
	case "nn.rebalance":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		moved, err := s.cl.RebalanceContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return movedResult{Moved: moved}, nil
	case "nn.dist":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		counts, err := s.nn.BlockDistribution(p.Name)
		if err != nil {
			return nil, err
		}
		return distResult{Counts: counts}, nil
	case "nn.maintain":
		var p maintainParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return s.cl.MaintainReplicationContext(ctx, p.Name, p.Adapt)
	case "nn.estimates":
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return estimatesResult{Estimates: s.nn.Heartbeat().Snapshot()}, nil
	case "nn.consistency":
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		if err := s.nn.CheckConsistency(); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// foldHeartbeat diffs one beat's cumulative totals against the last
// folded state and feeds the delta to the estimator, then refreshes
// the cluster's (λ, μ) so subsequent placements read the new weights.
// A beat whose sequence is not newer than the last folded one is
// rejected as stale (delayed duplicate); a beat also flips the
// sender's liveness belief up — it is, evidently, talking.
func (s *NameNodeServer) foldHeartbeat(p heartbeatParams) error {
	if int(p.Node) < 0 || int(p.Node) >= len(s.stores) {
		return fmt.Errorf("%w: node %d", ErrUnknownDataNode, p.Node)
	}

	s.hbMu.Lock()
	st, ok := s.hb[p.Node]
	if !ok {
		st = &hbState{}
		s.hb[p.Node] = st
	}
	if p.Seq <= st.seq {
		s.hbMu.Unlock()
		return fmt.Errorf("%w: node %d seq %d <= %d", ErrStaleHeartbeat, p.Node, p.Seq, st.seq)
	}
	dUp := p.Uptime - st.uptime
	dInt := p.Interruptions - st.interruptions
	dDown := p.Downtime - st.downtime
	if dUp < 0 || dInt < 0 || dDown < 0 {
		s.hbMu.Unlock()
		return fmt.Errorf("%w: node %d cumulative totals went backwards", ErrBadObservation, p.Node)
	}
	st.seq = p.Seq
	st.uptime = p.Uptime
	st.interruptions = p.Interruptions
	st.downtime = p.Downtime
	st.lastBeat = time.Now()
	s.hbMu.Unlock()

	s.availMu.Lock()
	defer s.availMu.Unlock()
	if dUp > 0 || dInt > 0 {
		if err := s.nn.Heartbeat().ObserveBatch(p.Node, dUp, dInt, dDown); err != nil {
			return fmt.Errorf("svc: fold heartbeat from node %d: %w", p.Node, err)
		}
		s.nn.RefreshAvailability()
	}
	s.stores[p.Node].SetUp(true)
	return nil
}

// RefreshAvailability re-applies the estimator to the cluster under
// the write lock — the same fold the heartbeat path performs, exposed
// for tests and operational tooling.
func (s *NameNodeServer) RefreshAvailability() int {
	s.availMu.Lock()
	defer s.availMu.Unlock()
	return s.nn.RefreshAvailability()
}

// Estimates returns the current (λ, μ) snapshot.
func (s *NameNodeServer) Estimates() map[cluster.NodeID]model.Availability {
	s.availMu.RLock()
	defer s.availMu.RUnlock()
	return s.nn.Heartbeat().Snapshot()
}

// HeartbeatAges returns, per node that has ever heartbeated, the age
// of its freshest beat. The /metrics endpoint exports these.
func (s *NameNodeServer) HeartbeatAges(now time.Time) map[cluster.NodeID]time.Duration {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	out := make(map[cluster.NodeID]time.Duration, len(s.hb))
	for id, st := range s.hb {
		out[id] = now.Sub(st.lastBeat)
	}
	return out
}

package svc

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/model"
	"github.com/adaptsim/adapt/internal/shard"
	"github.com/adaptsim/adapt/internal/stats"
	"github.com/adaptsim/adapt/internal/wal"
)

// Op RPC params/results (the shell surface of §IV-A over the wire).
type copyParams struct {
	Name  string `json:"name"`
	Data  []byte `json:"data"`
	Adapt bool   `json:"adapt"`
}

type copyResult struct {
	Meta   *dfs.FileMeta   `json:"meta"`
	Report dfs.WriteReport `json:"report"`
}

type cpParams struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Adapt bool   `json:"adapt"`
}

type nameParams struct {
	Name string `json:"name"`
}

type readResult struct {
	Data []byte `json:"data"`
}

type listResult struct {
	Files []string `json:"files"`
}

type movedResult struct {
	Moved int `json:"moved"`
}

type distResult struct {
	Counts []int `json:"counts"`
}

type maintainParams struct {
	Name  string `json:"name"`
	Adapt bool   `json:"adapt"`
}

type estimatesResult struct {
	Estimates map[cluster.NodeID]model.Availability `json:"estimates"`
}

type scrubResult struct {
	Removed int `json:"removed"`
}

// hbState is the NameNode's per-DataNode heartbeat bookkeeping: the
// last sequence folded and the cumulative totals it carried, so the
// next beat folds only the delta. epoch identifies the DataNode
// incarnation the totals belong to: a restarted DataNode announces a
// new epoch and the fold re-baselines instead of rejecting its reset
// sequence numbers forever. state is the failure detector's belief.
type hbState struct {
	epoch         uint64
	seq           uint64
	uptime        float64
	interruptions int64
	downtime      float64
	lastBeat      time.Time
	state         NodeState
}

// NameNodeServer is the networked ADAPT master: file metadata, the
// block distributor, and the performance predictor behind a frame
// server. It is a transport shell over dfs.NameNode + dfs.Client
// running on remoteStore proxies, so every operation — placement,
// replica failover, crash-consistent redistribution — is the engine
// code the in-process tests certify, now spanning TCP.
//
// Heartbeats close the predictor loop: each beat's cumulative totals
// are diffed against the last folded state, the delta feeds
// cluster.HeartbeatEstimator, and RefreshAvailability rewrites the
// per-node (λ, μ) that the 1/E[T] placement weights read. availMu
// orders those rewrites against concurrent placements: folds take the
// write side, operations that build policies or walk cluster state
// take the read side.
type NameNodeServer struct {
	nn     *dfs.NameNode
	cl     *dfs.Client
	srv    *Server
	stores []*remoteStore
	start  time.Time

	availMu sync.RWMutex

	hbMu sync.Mutex
	hb   map[cluster.NodeID]*hbState

	durable    durableState  // WAL journal + snapshot cadence
	stopCh     chan struct{} // closed once by stopLoops
	stopOnce   sync.Once
	loops      sync.WaitGroup // detector + repair goroutines
	repairKick chan struct{}  // coalesced "scan now" signal

	// lifeCtx is the server's lifecycle context: it parents every
	// background operation (repair scans, maintenance RPCs) and is
	// cancelled by stopLoops, so Shutdown/Crash interrupts in-flight
	// work instead of waiting out its timeouts.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	// brkStats aggregates the per-store circuit breakers' transitions
	// and fast-fails for /metrics (nil when breakers are disabled).
	brkStats *BreakerStats
}

// DataPath values for NameNodeConfig: how block bytes cross the wire.
// The JSON control plane (metadata, heartbeats, deletes) is identical
// either way.
const (
	// DataPathBinary is the default: v2 streaming frames with
	// replication pipelining (wire2.go).
	DataPathBinary = "binary"
	// DataPathJSON is the legacy path: whole blocks as base64 inside
	// JSON RPC envelopes, fan-out writes.
	DataPathJSON = "json"
)

// NameNodeConfig tunes the service's client engine and its
// durability. Zero values keep the dfs defaults and, with an empty
// WALDir, a volatile (PR 4-style) namespace.
type NameNodeConfig struct {
	BlockSize   int64
	Replication int
	Gamma       float64
	// DataPath selects the block-bytes transport: DataPathBinary
	// (default, also for "") or DataPathJSON.
	DataPath string
	// WALDir enables the durable namespace: every mutation is
	// journaled there before it is acknowledged, and construction
	// recovers whatever namespace the directory already holds.
	WALDir string
	// SnapshotEvery is the checkpoint cadence in WAL records
	// (default 256): once a shard's replay suffix exceeds it, the
	// next mutation or repair scan triggers a snapshot + log
	// truncation for that shard.
	SnapshotEvery int
	// Shards is the namespace shard count (default 1). Each shard has
	// its own metadata lock and — under WALDir — its own journal
	// directory and snapshot cadence, so metadata throughput scales
	// with shards. A WAL directory remembers its shard count;
	// reopening with a different one fails (resharding unsupported).
	Shards int
	// TenantQuotas seeds per-tenant admission limits (files, bytes,
	// replication-factor ceiling), keyed by tenant name ("@tenant/…"
	// namespace prefixes). Enforced at the shard layer on create.
	TenantQuotas map[string]shard.Quota
	// Admission, when MaxInflight > 0, installs server-side admission
	// control on the metadata service: per-class concurrency limits, a
	// bounded wait queue, and brownout shedding of background traffic.
	// The zero value admits everything (historical behavior).
	Admission AdmissionConfig
	// Breaker, when Threshold > 0, gives every DataNode proxy a
	// client-side circuit breaker so a run of transport failures
	// fast-fails and routes reads around the node until a half-open
	// probe succeeds. The zero value disables breakers.
	Breaker BreakerConfig
	// Hedge, when HedgeReads is set, enables hedged block reads on the
	// engine's read path with these thresholds.
	Hedge HedgeConfig
	// HedgeReads turns hedged reads on (Hedge supplies the tuning;
	// its zero value takes the documented defaults).
	HedgeReads bool
}

// HedgeConfig re-exports the engine's hedged-read tuning so service
// construction is configured in one place.
type HedgeConfig = dfs.HedgeConfig

// Torn-pipeline scrub tuning: scrubGrace bounds how long a deferred
// scrub waits for its originating op to settle before giving up (the
// residue then belongs to ScrubOrphans); scrubBudget bounds the
// best-effort delete itself, so a scrub toward a gray holder costs a
// background goroutine a bounded wait instead of pinning it.
const (
	scrubGrace  = 5 * time.Second
	scrubBudget = 2 * time.Second
)

// NewNameNodeServer creates the master for cluster c whose DataNodes
// serve blocks at dnAddrs (indexed by NodeID; length must equal
// c.Len()). The RNG drives placement randomness. faults may be nil.
func NewNameNodeServer(c *cluster.Cluster, dnAddrs []string, g *stats.RNG, faults TransportFaults, cfg NameNodeConfig) (*NameNodeServer, error) {
	if len(dnAddrs) != c.Len() {
		return nil, fmt.Errorf("svc: %d datanode addrs for %d nodes: %w", len(dnAddrs), c.Len(), dfs.ErrUnknownNode)
	}
	if cfg.DataPath != "" && cfg.DataPath != DataPathBinary && cfg.DataPath != DataPathJSON {
		return nil, fmt.Errorf("svc: unknown data path %q: %w", cfg.DataPath, dfs.ErrBadConfig)
	}
	binary := cfg.DataPath != DataPathJSON
	addrs := append([]string(nil), dnAddrs...)
	resolve := func(n cluster.NodeID) (string, bool) {
		if int(n) < 0 || int(n) >= len(addrs) {
			return "", false
		}
		return addrs[n], true
	}
	stores := make([]*remoteStore, c.Len())
	ifaces := make([]dfs.BlockStore, c.Len())
	for i := range stores {
		id := cluster.NodeID(i)
		stores[i] = newRemoteStore(id, dnAddrs[i], "namenode", endpointName(id), faults)
		stores[i].binary = binary
		stores[i].resolve = resolve
		ifaces[i] = stores[i]
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	nn, err := dfs.NewNameNodeSharded(c, ifaces, shards)
	if err != nil {
		return nil, err
	}
	for _, tenant := range sortedQuotaKeys(cfg.TenantQuotas) {
		nn.Quotas().Set(tenant, cfg.TenantQuotas[tenant])
	}
	cl, err := dfs.NewClient(nn, g)
	if err != nil {
		return nil, err
	}
	if cfg.BlockSize > 0 {
		cl.BlockSize = cfg.BlockSize
	}
	if cfg.Replication > 0 {
		cl.Replication = cfg.Replication
	}
	if cfg.Gamma > 0 {
		cl.Gamma = cfg.Gamma
	}
	s := &NameNodeServer{
		nn:         nn,
		cl:         cl,
		stores:     stores,
		start:      time.Now(),
		hb:         make(map[cluster.NodeID]*hbState),
		stopCh:     make(chan struct{}),
		repairKick: make(chan struct{}, 1),
	}
	if cfg.Breaker.Threshold > 0 {
		// Breakers draw probe jitter from split streams of the
		// placement RNG; splitting only when enabled keeps the default
		// configuration's placement sequence bit-identical to PR 9.
		s.brkStats = &BreakerStats{}
		for i := range stores {
			stores[i].brk = newBreaker(cfg.Breaker, g.Split(), s.brkStats)
		}
		// Deep-pipeline evidence: when a commit or setup ack names
		// another chain node's hop as down (or working), that node's own
		// breaker accumulates the outcome exactly like a direct call —
		// without this, a gray node that never heads a chain would stall
		// every pipeline that includes it and never get walled off.
		notePeer := func(n cluster.NodeID, ok bool) {
			if int(n) >= 0 && int(n) < len(stores) {
				stores[n].brk.record(false, ok)
			}
		}
		for i := range stores {
			stores[i].notePeer = notePeer
		}
	}
	if cfg.HedgeReads {
		if err := nn.SetHedge(cfg.Hedge); err != nil {
			return nil, err
		}
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	// After a torn pipeline a deep chain node may hold a committed
	// replica whose ack was lost; the writer scrubs it through the
	// node's own control-plane proxy. PutChain spawns the scrub with the
	// live op context, and the hook defers the delete until the op has
	// settled — until then the engine may still recover by retrying the
	// same block directly onto a chain node, and deleting that replica
	// afterward would turn a recovered write into data loss. Once
	// settled, only replicas the final metadata does not reference are
	// deleted, under a bounded deadline so a gray holder cannot pin the
	// goroutine. An op that has not settled within the grace window
	// (deadline-free contexts) leaves its residue to ScrubOrphans.
	for i := range stores {
		stores[i].scrub = func(opCtx context.Context, n cluster.NodeID, id dfs.BlockID) {
			if int(n) < 0 || int(n) >= len(stores) {
				return
			}
			grace := time.NewTimer(scrubGrace)
			defer grace.Stop()
			select {
			case <-opCtx.Done():
			case <-s.lifeCtx.Done():
				return
			case <-grace.C:
				return
			}
			if nn.BlockReferenced(id, n) {
				return
			}
			dctx, cancel := context.WithTimeout(s.lifeCtx, scrubBudget)
			defer cancel()
			_ = stores[n].Delete(dctx, id)
		}
	}
	if cfg.WALDir != "" {
		dirs, err := wal.ShardDirs(cfg.WALDir, shards)
		if err != nil {
			return nil, err
		}
		journals := make([]*walJournal, len(dirs))
		hooks := make([]dfs.Journal, len(dirs))
		closeAll := func() {
			for _, j := range journals {
				if j != nil {
					_ = j.log.Close()
				}
			}
		}
		for i, dir := range dirs {
			j, files, err := openJournal(dir)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("svc: recover shard %d: %w", i, err)
			}
			journals[i] = j
			hooks[i] = j
			// Recovery first, then the journal: replayed mutations
			// must not be re-journaled.
			if err := nn.RestoreShard(i, files); err != nil {
				closeAll()
				return nil, fmt.Errorf("svc: restore shard %d: %w", i, err)
			}
		}
		if err := nn.SetShardJournals(hooks); err != nil {
			closeAll()
			return nil, err
		}
		s.durable.journals = journals
		s.durable.snapMus = make([]sync.Mutex, len(journals))
		s.durable.snapshotEvery = 256
		if cfg.SnapshotEvery > 0 {
			s.durable.snapshotEvery = uint64(cfg.SnapshotEvery)
		}
	}
	s.srv = NewServer("namenode", faults, s.handle)
	if cfg.Admission.MaxInflight > 0 {
		s.srv.SetAdmission(cfg.Admission)
	}
	return s, nil
}

// Admission exposes the metadata service's admission controller (nil
// when disabled).
func (s *NameNodeServer) Admission() *admission { return s.srv.Admission() }

// BreakerStates returns each DataNode proxy's current breaker state,
// indexed by NodeID, and the fleet-wide transition stats. stats is nil
// when breakers are disabled.
func (s *NameNodeServer) BreakerStates() (states []breakerState, stats *BreakerStats) {
	states = make([]breakerState, len(s.stores))
	for i, st := range s.stores {
		states[i] = st.brk.State()
	}
	return states, s.brkStats
}

// sortedQuotaKeys returns the tenant names of a quota map in sorted
// order so construction applies them deterministically.
func sortedQuotaKeys(m map[string]shard.Quota) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Listen binds the metadata service.
func (s *NameNodeServer) Listen(addr string) error { return s.srv.Listen(addr) }

// Addr returns the bound service address.
func (s *NameNodeServer) Addr() string { return s.srv.Addr() }

// Engine exposes the underlying dfs.NameNode (counters, consistency
// checks in tests).
func (s *NameNodeServer) Engine() *dfs.NameNode { return s.nn }

// stopLoops halts the failure-detector and auto-repair goroutines
// (idempotent) and waits for them to exit.
func (s *NameNodeServer) stopLoops() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		s.lifeCancel()
	})
	s.loops.Wait()
}

// Shutdown stops the background loops, drains in-flight RPCs (bounded
// by ctx), closes the DataNode proxy connections, and cleanly closes
// the WAL.
func (s *NameNodeServer) Shutdown(ctx context.Context) error {
	s.stopLoops()
	err := s.srv.Shutdown(ctx)
	for _, st := range s.stores {
		st.close()
	}
	for _, j := range s.durable.journals {
		if jerr := j.log.Close(); jerr != nil && err == nil {
			err = jerr
		}
	}
	return err
}

// Crash kills the NameNode the way SIGKILL would: background loops
// stop, the WAL handle is abandoned without a final sync (so a stray
// in-flight handler can never append behind a restarted incarnation's
// back), and the listener and every connection drop without drain.
// Acknowledged mutations are already fsync'd; everything else is
// deliberately lost — that is the failure the recovery tests inject.
func (s *NameNodeServer) Crash() {
	s.stopLoops()
	for _, j := range s.durable.journals {
		j.log.Crash()
	}
	s.srv.Crash()
	for _, st := range s.stores {
		st.close()
	}
}

// handle dispatches one RPC, then lets the snapshot cadence piggyback
// on successful namespace mutations.
func (s *NameNodeServer) handle(ctx context.Context, from, method string, params []byte) (any, error) {
	res, err := s.dispatch(ctx, from, method, params)
	if err == nil {
		switch method {
		case "nn.copyFromLocal", "nn.cp", "nn.delete", "nn.adapt", "nn.rebalance", "nn.maintain":
			s.maybeSnapshot()
		}
	}
	return res, err
}

func (s *NameNodeServer) dispatch(ctx context.Context, from, method string, params []byte) (any, error) {
	switch method {
	case "nn.heartbeat":
		var p heartbeatParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := s.foldHeartbeat(p); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "nn.copyFromLocal":
		var p copyParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		fm, report, err := s.cl.CopyFromLocalReportContext(ctx, p.Name, p.Data, p.Adapt)
		if err != nil {
			return nil, err
		}
		return copyResult{Meta: fm, Report: report}, nil
	case "nn.cp":
		var p cpParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return s.cl.CpContext(ctx, p.Src, p.Dst, p.Adapt)
	case "nn.read":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		data, err := s.cl.ReadFileContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return readResult{Data: data}, nil
	case "nn.stat":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		return s.nn.Stat(p.Name)
	case "nn.list":
		return listResult{Files: s.nn.List()}, nil
	case "nn.delete":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		if err := s.nn.DeleteContext(ctx, p.Name); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "nn.adapt":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		moved, err := s.cl.AdaptContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return movedResult{Moved: moved}, nil
	case "nn.rebalance":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		moved, err := s.cl.RebalanceContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		return movedResult{Moved: moved}, nil
	case "nn.dist":
		var p nameParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		counts, err := s.nn.BlockDistribution(p.Name)
		if err != nil {
			return nil, err
		}
		return distResult{Counts: counts}, nil
	case "nn.maintain":
		var p maintainParams
		if err := unmarshalParams(params, &p); err != nil {
			return nil, err
		}
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return s.cl.MaintainReplicationContext(ctx, p.Name, p.Adapt)
	case "nn.estimates":
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return estimatesResult{Estimates: s.nn.Heartbeat().Snapshot()}, nil
	case "nn.consistency":
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		if err := s.nn.CheckConsistencyContext(ctx); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case "nn.fsck":
		s.availMu.RLock()
		defer s.availMu.RUnlock()
		return s.nn.Health(), nil
	case "nn.scrub":
		removed, err := s.nn.ScrubOrphans(ctx)
		if err != nil {
			return nil, err
		}
		return scrubResult{Removed: removed}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// foldHeartbeat diffs one beat's cumulative totals against the last
// folded state and feeds the delta to the estimator, then refreshes
// the cluster's (λ, μ) so subsequent placements read the new weights.
// A beat whose sequence is not newer than the last folded one is
// rejected as stale (delayed duplicate); a beat also flips the
// sender's liveness belief up — it is, evidently, talking.
func (s *NameNodeServer) foldHeartbeat(p heartbeatParams) error {
	if int(p.Node) < 0 || int(p.Node) >= len(s.stores) {
		return fmt.Errorf("%w: node %d", ErrUnknownDataNode, p.Node)
	}

	s.hbMu.Lock()
	st, ok := s.hb[p.Node]
	if !ok {
		st = &hbState{epoch: p.Epoch}
		s.hb[p.Node] = st
	}
	if p.Epoch != st.epoch {
		// A restarted DataNode: fresh incarnation, fresh counters.
		// Re-baseline at zero so its reset totals fold as a full
		// delta instead of being rejected as stale/backwards forever.
		// Observations the old incarnation already shipped were
		// folded then; whatever it accumulated after its last beat
		// died with it, which cumulative totals cannot recover.
		*st = hbState{epoch: p.Epoch}
	}
	if p.Seq <= st.seq {
		s.hbMu.Unlock()
		return fmt.Errorf("%w: node %d seq %d <= %d", ErrStaleHeartbeat, p.Node, p.Seq, st.seq)
	}
	dUp := p.Uptime - st.uptime
	dInt := p.Interruptions - st.interruptions
	dDown := p.Downtime - st.downtime
	if dUp < 0 || dInt < 0 || dDown < 0 {
		s.hbMu.Unlock()
		return fmt.Errorf("%w: node %d cumulative totals went backwards", ErrBadObservation, p.Node)
	}
	st.seq = p.Seq
	st.uptime = p.Uptime
	st.interruptions = p.Interruptions
	st.downtime = p.Downtime
	st.lastBeat = time.Now()
	wasDead := st.state == NodeDead
	st.state = NodeAlive
	s.hbMu.Unlock()
	if wasDead {
		// A revived node restores capacity: blocks that were
		// unrepairable while it was the only spare target may be
		// repairable now.
		s.kickRepair()
	}

	s.availMu.Lock()
	defer s.availMu.Unlock()
	if dUp > 0 || dInt > 0 {
		if err := s.nn.Heartbeat().ObserveBatch(p.Node, dUp, dInt, dDown); err != nil {
			return fmt.Errorf("svc: fold heartbeat from node %d: %w", p.Node, err)
		}
		s.nn.RefreshAvailability()
	}
	s.stores[p.Node].SetUp(true)
	return nil
}

// RefreshAvailability re-applies the estimator to the cluster under
// the write lock — the same fold the heartbeat path performs, exposed
// for tests and operational tooling.
func (s *NameNodeServer) RefreshAvailability() int {
	s.availMu.Lock()
	defer s.availMu.Unlock()
	return s.nn.RefreshAvailability()
}

// Estimates returns the current (λ, μ) snapshot.
func (s *NameNodeServer) Estimates() map[cluster.NodeID]model.Availability {
	s.availMu.RLock()
	defer s.availMu.RUnlock()
	return s.nn.Heartbeat().Snapshot()
}

// HeartbeatAges returns, per node that has ever heartbeated, the age
// of its freshest beat. The /metrics endpoint exports these.
func (s *NameNodeServer) HeartbeatAges(now time.Time) map[cluster.NodeID]time.Duration {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	out := make(map[cluster.NodeID]time.Duration, len(s.hb))
	for id, st := range s.hb {
		out[id] = now.Sub(st.lastBeat)
	}
	return out
}

package svc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
)

// DataNode side of the v2 data plane: the stream handler the server's
// preamble sniffing routes binary connections to. A write stream is
// relayed down the replication chain HDFS-style — this node dials the
// next hop, forwards each chunk as it arrives, and commits
// deepest-first: downstream commit acks are collected before the
// local put, and only then is the combined ack sent upstream, so a
// torn stream can never leave a committed prefix the writer did not
// hear about from every deeper node first.

// serveData dispatches one v2 connection by its opening frame.
func (d *DataNodeServer) serveData(ctx context.Context, nc net.Conn, br *bufio.Reader) {
	f, err := readFrame2(br)
	if err != nil {
		return
	}
	switch f.Type {
	case frameOpenWrite:
		d.serveWrite(ctx, nc, br, f)
	case frameOpenRead:
		d.serveRead(ctx, nc, br, f)
	default:
		f.release()
	}
}

// streamCtx derives the stream's context from the open frame's
// deadline budget and mirrors it onto the connection, so a cancelled
// or expired stream aborts blocked I/O instead of hanging.
func streamCtx(ctx context.Context, nc net.Conn, deadlineMS int64) (context.Context, func()) {
	var cancel context.CancelFunc = func() {}
	if deadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = nc.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { _ = nc.SetDeadline(connPast) })
	return ctx, func() {
		stop()
		cancel()
	}
}

// nodeDownAcks reports a severed hop: chain[0] — the node this relay
// actually failed to reach — is marked failed with an ErrNodeDown
// wrap, and deeper nodes are omitted. An omitted node reads as
// "commit outcome unknown" at the writer, which still counts the
// replica as failed for placement but records no transport evidence:
// blaming the whole suffix would let one gray hop feed false breaker
// failures against every healthy node placed behind it.
func nodeDownAcks(chain []chainEntry, cause error) []ackEntry {
	if len(chain) == 0 {
		return nil
	}
	return []ackEntry{failedAck(chain[0].Node,
		fmt.Errorf("%w: datanode %d unreachable in pipeline: %v", dfs.ErrNodeDown, chain[0].Node, cause))}
}

func (d *DataNodeServer) serveWrite(ctx context.Context, nc net.Conn, br *bufio.Reader, f frame2) {
	sid := f.Stream
	ow, err := decodeOpenWrite(f.Payload)
	f.release()
	if err != nil || ow.Size > MaxFrameSize {
		return
	}
	name := endpointName(d.id)
	// Serving-side fault check, as for incoming JSON requests: a
	// partition severs streams already dialed, not just new dials.
	if d.faults != nil {
		if d.faults.FailMessage(ow.From, name) != nil {
			return
		}
	}
	ctx, done := streamCtx(ctx, nc, ow.DeadlineMS)
	defer done()
	bw := bufio.NewWriterSize(nc, 32<<10)

	// A write stream is a put: it competes for the same admission
	// budget as JSON dn.put, and a shed stream answers with a setup ack
	// marking every chain node overloaded (wire taxonomy intact), which
	// the writer's pipelinePut early-aborts on — fail fast, no bytes.
	release, aerr := d.srv.admit.Load().acquire(ctx, classPut)
	if aerr != nil {
		shed := make([]ackEntry, 0, 1+len(ow.Chain))
		shed = append(shed, failedAck(d.id, aerr))
		for _, ce := range ow.Chain {
			shed = append(shed, failedAck(ce.Node, aerr))
		}
		if writeFrame2(bw, frameSetupAck, 0, sid, encodeAcks(shed)) == nil {
			_ = bw.Flush()
		}
		return
	}
	defer release()

	// Set up the downstream hop before admitting the stream, so the
	// writer's setup ack already reflects which chain nodes are in.
	var down *dataConn
	var downAcks []ackEntry
	if len(ow.Chain) > 0 {
		next := ow.Chain[0]
		dc, derr := dialDataSetup(ctx, next.Addr, name, endpointName(next.Node), d.faults)
		if derr == nil {
			// The forwarded budget is recomputed from this hop's derived
			// context, not copied from the open frame: whatever this node
			// already spent is gone, so an N-deep chain shares one budget
			// instead of re-arming it per hop.
			//lint:ignore determinism encoding the ctx deadline as a wire budget needs the wall clock; simulations drive the transport with deadline-free contexts
			fw := openWrite{Block: ow.Block, Size: ow.Size, DeadlineMS: deadlineBudget(ctx, time.Now()), From: name, Chain: ow.Chain[1:]}
			derr = writeFrame2(dc.bw, frameOpenWrite, 0, sid, encodeOpenWrite(fw))
			if derr == nil {
				derr = dc.bw.Flush()
			}
			if derr == nil {
				sf, rerr := readFrame2(dc.br)
				switch {
				case rerr != nil:
					derr = rerr
				case sf.Type != frameSetupAck:
					sf.release()
					derr = fmt.Errorf("%w: setup reply type %d", ErrBadFrame, sf.Type)
				default:
					downAcks, derr = decodeAcks(sf.Payload)
					sf.release()
				}
			}
			if derr != nil {
				dc.close()
				dc = nil
			}
		}
		if derr != nil {
			downAcks = nodeDownAcks(ow.Chain, derr)
		}
		down = dc
	}
	if down != nil {
		defer down.close()
	}
	setup := append([]ackEntry{{Node: d.id, OK: true}}, downAcks...)
	if writeFrame2(bw, frameSetupAck, 0, sid, encodeAcks(setup)) != nil || bw.Flush() != nil {
		return
	}

	// Assemble the block from chunks, relaying each downstream as it
	// arrives. The assembly buffer is pooled: dn.Put copies on commit.
	buf := frameBufs.get(int(ow.Size))
	defer frameBufs.put(buf)
	received := int64(0)
	for {
		cf, rerr := readFrame2(br)
		if rerr != nil {
			return // torn stream: no commit, writer cleans up
		}
		if cf.Type != frameChunk || cf.Stream != sid || received+int64(len(cf.Payload)) > ow.Size {
			cf.release()
			return
		}
		if down != nil {
			relayErr := error(nil)
			if d.faults != nil {
				relayErr = d.faults.FailMessage(name, endpointName(ow.Chain[0].Node))
			}
			if relayErr == nil {
				relayErr = writeFrame2(down.bw, frameChunk, cf.Flags, sid, cf.Payload)
			}
			if relayErr == nil && cf.last() {
				relayErr = down.bw.Flush()
			}
			if relayErr != nil {
				// The deeper chain is gone; keep receiving for the
				// local replica and report the loss in the commit ack.
				down.close()
				down = nil
				downAcks = nodeDownAcks(ow.Chain, relayErr)
			}
		}
		copy(buf[received:], cf.Payload)
		received += int64(len(cf.Payload))
		last := cf.last()
		cf.release()
		if last {
			break
		}
	}
	if received != ow.Size {
		return // short stream: never commit a partial block
	}

	// Commit deepest-first: downstream acks before the local put.
	if down != nil {
		cf, rerr := readFrame2(down.br)
		switch {
		case rerr != nil:
			downAcks = nodeDownAcks(ow.Chain, rerr)
		case cf.Type != frameCommitAck:
			cf.release()
			downAcks = nodeDownAcks(ow.Chain, fmt.Errorf("%w: commit reply type %d", ErrBadFrame, cf.Type))
		default:
			var derr error
			downAcks, derr = decodeAcks(cf.Payload)
			cf.release()
			if derr != nil {
				downAcks = nodeDownAcks(ow.Chain, derr)
			}
		}
	}
	var self ackEntry
	if cerr := ctx.Err(); cerr != nil {
		self = failedAck(d.id, cerr)
	} else if perr := d.dn.Put(ow.Block, buf); perr != nil {
		self = failedAck(d.id, perr)
	} else {
		self = ackEntry{Node: d.id, OK: true}
	}
	commit := append([]ackEntry{self}, downAcks...)
	if writeFrame2(bw, frameCommitAck, 0, sid, encodeAcks(commit)) == nil {
		_ = bw.Flush()
	}
}

func (d *DataNodeServer) serveRead(ctx context.Context, nc net.Conn, br *bufio.Reader, f frame2) {
	sid := f.Stream
	or, err := decodeOpenRead(f.Payload)
	f.release()
	if err != nil {
		return
	}
	name := endpointName(d.id)
	if d.faults != nil {
		if d.faults.FailMessage(or.From, name) != nil {
			return
		}
	}
	ctx, done := streamCtx(ctx, nc, or.DeadlineMS)
	defer done()
	bw := bufio.NewWriterSize(nc, 32<<10)

	// A read stream is a get: shed requests answer with an overload
	// error frame whose taxonomy survives rehydration on the reader.
	release, aerr := d.srv.admit.Load().acquire(ctx, classGet)
	if aerr != nil {
		if writeFrame2(bw, frameError, flagLast, sid, encodeErrorFrame(aerr)) == nil {
			_ = bw.Flush()
		}
		return
	}
	defer release()

	data, gerr := d.dn.Get(or.Block)
	if gerr != nil {
		if writeFrame2(bw, frameError, flagLast, sid, encodeErrorFrame(gerr)) == nil {
			_ = bw.Flush()
		}
		return
	}
	if writeFrame2(bw, frameReadHdr, 0, sid, encodeReadHdr(int64(len(data)))) != nil {
		return
	}
	for off := 0; ; {
		n := len(data) - off
		if n > DefaultChunkSize {
			n = DefaultChunkSize
		}
		last := off+n == len(data)
		var flags uint16
		if last {
			flags = flagLast
		}
		// A mid-stream partition severs the remaining chunks.
		if d.faults != nil {
			if d.faults.FailMessage(or.From, name) != nil {
				return
			}
		}
		if writeFrame2(bw, frameChunk, flags, sid, data[off:off+n]) != nil {
			return
		}
		off += n
		if last {
			break
		}
	}
	_ = bw.Flush()
}

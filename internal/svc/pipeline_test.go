package svc

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// pipelineCluster boots an n-node cluster on the binary data path with
// the given block size and replication.
func pipelineCluster(t *testing.T, n int, blockSize int64, replication int, faults TransportFaults) *LocalCluster {
	t.Helper()
	c, err := cluster.New(make([]cluster.Node, n))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(7), faults, NameNodeConfig{
		BlockSize:   blockSize,
		Replication: replication,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	return lc
}

// TestPipelineThreeDeepChain writes at replication 3, so every block
// crosses a client -> DN1 -> DN2 -> DN3 relay chain, and reads back.
func TestPipelineThreeDeepChain(t *testing.T) {
	lc := pipelineCluster(t, 4, 1024, 3, nil)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	data := payload(6 * 1024)
	fm, report, err := cl.CopyFromLocal(ctx, "f", data, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinReplication != 3 || report.DegradedBlocks != 0 {
		t.Fatalf("report = %+v, want full replication 3", report)
	}
	for _, bm := range fm.Blocks {
		if len(bm.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas: %v", bm.ID, len(bm.Replicas), bm.Replicas)
		}
	}

	got, err := cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ from written")
	}
	// Every replica of every block must hold the true bytes — the
	// relay path stored them, not just the head of the chain.
	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineMultiChunkBlocks uses blocks larger than the chunk size,
// so one block crosses the pipeline as several frames each way.
func TestPipelineMultiChunkBlocks(t *testing.T) {
	lc := pipelineCluster(t, 3, 1<<20, 2, nil)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	data := payload(2<<20 + 12345) // 3 blocks, ~4 chunks each
	if _, report, err := cl.CopyFromLocal(ctx, "big", data, false); err != nil {
		t.Fatal(err)
	} else if report.MinReplication != 2 {
		t.Fatalf("report = %+v", report)
	}
	got, err := cl.ReadFile(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-chunk read differs from written")
	}
	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineFailsOverDeadChainNode: a chain node whose storage is
// down must not sink the write — the commit ack reports it failed with
// the node-down taxonomy, and the engine diverts that replica to an
// alternate live node, exactly as the fan-out path would.
func TestPipelineFailsOverDeadChainNode(t *testing.T) {
	lc := pipelineCluster(t, 4, 1024, 3, nil)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	victim := cluster.NodeID(1)
	if err := lc.SetNodeUp(victim, false); err != nil {
		t.Fatal(err)
	}

	data := payload(4 * 1024)
	_, report, err := cl.CopyFromLocal(ctx, "f", data, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinReplication != 3 {
		t.Fatalf("report = %+v, want failover to keep replication 3", report)
	}
	counts, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if counts[victim] != 0 {
		t.Fatalf("dead node holds %d replicas: %v", counts[victim], counts)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 12 { // 4 blocks x replication 3 on the 3 live nodes
		t.Fatalf("distribution %v sums to %d, want 12", counts, total)
	}
	if lc.Engine().Resilience().Snapshot().NodeDownErrors == 0 {
		t.Fatal("dead chain node produced no NodeDownErrors")
	}

	got, err := cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ from written")
	}
}

// TestPipelineUnreachableChainNode partitions the middle of the chain
// at the transport layer: the relay cannot dial it, the setup ack
// reports it down, and the write diverts to the live spare.
func TestPipelineUnreachableChainNode(t *testing.T) {
	nf, err := chaos.NewNetFaults(stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	lc := pipelineCluster(t, 4, 1024, 3, nf)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	victim := cluster.NodeID(2)
	nf.Partition(endpointName(victim))

	data := payload(3 * 1024)
	_, report, err := cl.CopyFromLocal(ctx, "f", data, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinReplication != 3 {
		t.Fatalf("report = %+v, want failover to keep replication 3", report)
	}
	counts, err := cl.BlockDistribution(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if counts[victim] != 0 {
		t.Fatalf("partitioned node holds %d replicas: %v", counts[victim], counts)
	}
	nf.Heal(endpointName(victim))
	got, err := cl.ReadFile(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ from written")
	}
}

// TestScrubOrphansRemovesUnreferencedReplicas plants a replica no file
// references — the residue a torn pipeline leaves when its cleanup
// cannot reach a holder — and asserts the scrubber removes exactly it:
// live blocks and blocks minted after the scan's high-water mark stay.
func TestScrubOrphansRemovesUnreferencedReplicas(t *testing.T) {
	lc := pipelineCluster(t, 3, 1024, 2, nil)
	cl := lc.Client("shell")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Mint real block ids 0..3, then orphan them by deleting the file.
	if _, _, err := cl.CopyFromLocal(ctx, "doomed", payload(4*1024), false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.CopyFromLocal(ctx, "keeper", payload(2*1024), false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}

	// Plant the torn-write residue by hand: a deleted block's id on a
	// node, below the high-water mark, referenced by nothing.
	dn0 := lc.DNs[0].Node()
	if err := dn0.Put(dfs.BlockID(2), []byte("orphan bytes")); err != nil {
		t.Fatal(err)
	}
	// And one above the high-water mark: an in-flight create's block
	// the scrubber must leave alone.
	const futureID = dfs.BlockID(1 << 40)
	if err := dn0.Put(futureID, []byte("in-flight bytes")); err != nil {
		t.Fatal(err)
	}

	removed, err := cl.ScrubOrphans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("scrub removed %d replicas, want exactly the planted orphan", removed)
	}
	left := dn0.StoredBlocks()
	for _, id := range left {
		if id == dfs.BlockID(2) {
			t.Fatal("orphan survived the scrub")
		}
	}
	found := false
	for _, id := range left {
		if id == futureID {
			found = true
		}
	}
	if !found {
		t.Fatal("scrub deleted a block above the high-water mark")
	}
	dn0.Delete(futureID)

	// The keeper file is untouched and the namespace consistent.
	if _, err := cl.ReadFile(ctx, "keeper"); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
	// A second pass finds nothing.
	if removed, err := cl.ScrubOrphans(ctx); err != nil || removed != 0 {
		t.Fatalf("second scrub: removed %d, err %v", removed, err)
	}
}

// TestStreamGetCancelledContext: a dead context must abort the stream
// dial instead of hanging.
func TestStreamGetCancelledContext(t *testing.T) {
	lc := pipelineCluster(t, 2, 1024, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := streamGet(ctx, "test", nil, lc.DNs[0].Addr(), endpointName(0), 0)
	if err == nil {
		t.Fatal("cancelled stream get succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

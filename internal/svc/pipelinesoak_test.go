package svc

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestPipelineChaosSoak is the v2 durability soak: three-deep
// replication chains written while a chaos goroutine partitions
// endpoints, injects drops and latency, and crashes DataNode storage
// mid-pipeline. The contract afterwards:
//
//   - zero acked writes lost — every CopyFromLocal that returned
//     success reads back byte-identical once the cluster heals;
//   - no orphan blocks — after one scrub pass, every stored replica is
//     referenced by a file and a second scrub finds nothing;
//   - the run is -race clean (writers and the chaos injector hammer
//     the pipeline concurrently).
func TestPipelineChaosSoak(t *testing.T) {
	const nodes = 5
	nf, err := chaos.NewNetFaults(stats.NewRNG(41))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(make([]cluster.Node, nodes))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(42), nf, NameNodeConfig{
		BlockSize:   1024,
		Replication: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	cl := lc.Client("shell")
	defer cl.Close()

	// Background chaos: rotate a transport partition and a storage
	// crash across the DataNodes while writes are in flight, with a
	// low ambient drop probability and a few milliseconds of jitter on
	// every message.
	lat, err := stats.NewUniform(0.0005, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	nf.SetDropProb(0.03)
	nf.SetLatency(lat, 10*time.Millisecond)

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		g := stats.NewRNG(43)
		partitioned := cluster.NodeID(-1)
		crashed := cluster.NodeID(-1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				if partitioned >= 0 {
					nf.Heal(endpointName(partitioned))
				}
				if crashed >= 0 {
					_ = lc.SetNodeUp(crashed, true)
				}
				return
			case <-time.After(5 * time.Millisecond):
			}
			// At most one node partitioned and one crashed at a time:
			// replication 3 over 5 nodes keeps every write a quorum.
			if partitioned >= 0 {
				nf.Heal(endpointName(partitioned))
				partitioned = -1
			} else {
				partitioned = cluster.NodeID(g.IntN(nodes))
				nf.Partition(endpointName(partitioned))
			}
			if i%3 == 0 {
				if crashed >= 0 {
					_ = lc.SetNodeUp(crashed, true)
					crashed = -1
				} else {
					crashed = cluster.NodeID(g.IntN(nodes))
					_ = lc.SetNodeUp(crashed, false)
				}
			}
		}
	}()

	// Writer: every successful copy is recorded with its bytes; names
	// are never reused, so a response lost to a drop cannot collide
	// with a later attempt.
	const writes = 30
	acked := make(map[string][]byte, writes)
	for i := 0; i < writes; i++ {
		name := fmt.Sprintf("soak-%d", i)
		data := payload(3*1024 + i)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _, err := cl.CopyFromLocal(ctx, name, data, false)
		cancel()
		if err == nil {
			acked[name] = data
		}
	}
	close(stop)
	chaosWG.Wait()

	// Heal the world.
	nf.SetDropProb(0)
	nf.SetLatency(nil, 0)
	for id := cluster.NodeID(0); int(id) < nodes; id++ {
		nf.Heal(endpointName(id))
		if err := lc.SetNodeUp(id, true); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Heartbeats restore the NameNode's liveness belief for nodes it
	// marked down when their RPCs failed mid-chaos.
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}
	if len(acked) == 0 {
		t.Fatal("chaos ate every write: soak proved nothing")
	}
	t.Logf("soak: %d/%d writes acked under chaos", len(acked), writes)

	// Zero acked writes lost.
	for name, want := range acked {
		got, err := cl.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("acked write %q lost: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked write %q corrupted: %d vs %d bytes", name, len(got), len(want))
		}
	}

	// No orphans: one scrub removes torn-write residue, then every
	// replica still stored is referenced by a file and a second pass
	// finds nothing.
	removed, err := cl.ScrubOrphans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: scrub removed %d orphan replicas", removed)
	referenced := make(map[dfs.BlockID]bool)
	files, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range files {
		fm, err := cl.Stat(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		for _, bm := range fm.Blocks {
			referenced[bm.ID] = true
		}
	}
	for i, dn := range lc.DNs {
		for _, id := range dn.Node().StoredBlocks() {
			if !referenced[id] {
				t.Errorf("node %d stores orphan block %d after scrub", i, id)
			}
		}
	}
	if again, err := cl.ScrubOrphans(ctx); err != nil || again != 0 {
		t.Fatalf("second scrub: removed %d, err %v", again, err)
	}

	// The namespace itself must be healthy: every live replica's bits
	// verify, and fsck sees no block without a live replica.
	if err := cl.CheckConsistency(ctx); err != nil {
		t.Fatal(err)
	}
	health, err := cl.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Unavailable != 0 {
		t.Fatalf("fsck: %d blocks without a live replica: %+v", health.Unavailable, health)
	}
}

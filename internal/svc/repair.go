package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
)

// RepairConfig tunes the autonomous re-replication scheduler. Zero
// values take the defaults noted per field.
type RepairConfig struct {
	// Interval is the periodic full-scan cadence (default 2s). The
	// failure detector also kicks an immediate scan when it declares
	// a node dead, so the interval only bounds how long a quietly
	// degraded file (e.g. a degraded write) waits for repair.
	Interval time.Duration
	// Concurrency bounds how many files repair in parallel (default 2).
	Concurrency int
	// MaxAttempts bounds per-file attempts within one scan (default 3).
	MaxAttempts int
	// Backoff is the base delay between attempts, doubled each retry
	// (default 50ms).
	Backoff time.Duration
	// ScanTimeout bounds one whole scan (default 30s).
	ScanTimeout time.Duration
}

func (cfg *RepairConfig) defaults() {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.ScanTimeout <= 0 {
		cfg.ScanTimeout = 30 * time.Second
	}
}

// StartAutoRepair begins the background re-replication scheduler:
// every Interval — or immediately when the failure detector declares
// a node dead — it sweeps the namespace and re-replicates every
// under-replicated block through the engine's availability-aware
// repair path (dfs.Client.MaintainReplicationContext with ADAPT
// weights, the same 1/E[T] scoring initial placement uses), with
// bounded concurrency and per-file retry/backoff. Call at most once;
// Shutdown/Crash stops the loop.
func (s *NameNodeServer) StartAutoRepair(cfg RepairConfig) {
	cfg.defaults()
	s.loops.Add(1)
	go func() {
		defer s.loops.Done()
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-t.C:
				s.RepairScan(cfg)
			case <-s.repairKick:
				s.RepairScan(cfg)
			}
		}
	}()
}

// kickRepair requests an immediate scan (coalesced: a pending kick is
// enough).
func (s *NameNodeServer) kickRepair() {
	select {
	case s.repairKick <- struct{}{}:
	default:
	}
}

// RepairScan sweeps every file once, repairing under-replicated
// blocks — exported so tests (and the headline soak) can force a scan
// instead of waiting on the ticker. It returns the number of replicas
// re-created.
func (s *NameNodeServer) RepairScan(cfg RepairConfig) int {
	cfg.defaults()
	s.nn.Resilience().RepairScans.Add(1)
	// Parented on the lifecycle context so Shutdown/Crash cancels an
	// in-flight scan instead of letting it run out its timeout.
	ctx, cancel := context.WithTimeout(s.lifeCtx, cfg.ScanTimeout)
	defer cancel()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	repaired := 0
	for _, name := range s.nn.List() {
		select {
		case <-s.stopCh:
			wg.Wait()
			return repaired
		default:
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(name string) {
			defer wg.Done()
			defer func() { <-sem }()
			n, _ := s.repairFile(ctx, name, cfg)
			mu.Lock()
			repaired += n
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	s.maybeSnapshot()
	return repaired
}

// repairFile runs the availability-aware repair pass on one file with
// retry/backoff: transient failures (nodes racing down, chaos faults)
// and still-unrepairable blocks retry up to MaxAttempts; a deleted
// file or a permanent error ends the attempt quietly — the next scan
// revisits anything still degraded.
func (s *NameNodeServer) repairFile(ctx context.Context, name string, cfg RepairConfig) (int, error) {
	repaired := 0
	backoff := cfg.Backoff
	for attempt := 1; ; attempt++ {
		s.availMu.RLock()
		report, err := s.cl.MaintainReplicationContext(ctx, name, true)
		s.availMu.RUnlock()
		repaired += report.Repaired
		switch {
		case err == nil && report.Unrepairable == 0:
			return repaired, nil
		case errors.Is(err, dfs.ErrFileNotFound):
			return repaired, nil // deleted while scanning
		case err != nil && !dfs.IsTransient(err):
			return repaired, fmt.Errorf("svc: repair %q: %w", name, err)
		}
		if attempt >= cfg.MaxAttempts {
			if err == nil {
				return repaired, nil // blocks left for the next scan
			}
			return repaired, fmt.Errorf("svc: repair %q gave up after %d attempts: %w", name, attempt, err)
		}
		select {
		case <-ctx.Done():
			return repaired, fmt.Errorf("svc: repair %q: %w", name, ctx.Err())
		case <-s.stopCh:
			return repaired, fmt.Errorf("svc: repair %q: %w", name, ErrShuttingDown)
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

package svc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler serves one RPC. from is the caller's endpoint name from the
// request envelope; ctx carries the caller's propagated deadline.
type Handler func(ctx context.Context, from, method string, params []byte) (any, error)

// DataHandler serves one v2 binary data stream on a dedicated
// connection (see wire2.go). It owns the connection until it returns;
// ctx is the server's lifecycle context. r is the connection's
// buffered reader with the preamble already consumed.
type DataHandler func(ctx context.Context, nc net.Conn, r *bufio.Reader)

// Server accepts frame connections and dispatches each request to its
// Handler on a fresh goroutine, so one slow block transfer never
// blocks a heartbeat on the same connection. Shutdown drains in-flight
// requests before returning: new requests are rejected with
// ErrShuttingDown, running handlers complete and flush their
// responses.
type Server struct {
	name    string // endpoint name, for the fault hook
	faults  TransportFaults
	handler Handler
	data    DataHandler // v2 stream handler; nil endpoints drop v2 dials

	// admit is the admission controller; a nil load admits everything.
	// Atomic so SetAdmission works on a serving endpoint (tests and
	// benches install limits on already-listening DataNodes).
	admit atomic.Pointer[admission]

	ln net.Listener

	// baseCtx parents every handler invocation; baseCancel fires on
	// Crash (immediately) and Shutdown (after the drain window), so a
	// handler stuck in a downstream call observes the server dying
	// instead of holding the connection forever.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	conns    map[net.Conn]bool
	down     bool
	inflight sync.WaitGroup
}

// NewServer creates a server for the named endpoint. faults may be
// nil.
func NewServer(name string, faults TransportFaults, handler Handler) *Server {
	s := &Server{
		name:    name,
		faults:  faults,
		handler: handler,
		conns:   make(map[net.Conn]bool),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// SetDataHandler installs the v2 binary stream handler. Call before
// Listen; endpoints without one close v2 connections on arrival.
func (s *Server) SetDataHandler(h DataHandler) { s.data = h }

// SetAdmission installs admission control (see AdmissionConfig); a
// zero config disables it. Safe on a serving endpoint — requests
// already admitted finish under the controller that admitted them.
func (s *Server) SetAdmission(cfg AdmissionConfig) { s.admit.Store(newAdmission(cfg)) }

// Admission exposes the controller for metrics export (nil when
// admission control is disabled).
func (s *Server) Admission() *admission { return s.admit.Load() }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("svc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("svc: listen %s: %w", addr, ErrShuttingDown)
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.down {
			s.mu.Unlock()
			_ = nc.Close()
			return
		}
		s.conns[nc] = true
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	var wmu sync.Mutex // serializes response frames on this conn
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		_ = nc.Close()
	}()
	// Both protocols share the listener: v2 data streams announce
	// themselves with a 4-byte preamble that can never be a valid JSON
	// frame header (it decodes as a length beyond MaxFrameSize), so
	// peeking the first bytes routes the connection unambiguously.
	br := bufio.NewReaderSize(nc, 64<<10)
	first, err := br.Peek(len(dataPreamble))
	if err != nil {
		return
	}
	if [4]byte(first) == dataPreamble {
		_, _ = br.Discard(len(dataPreamble))
		// A data stream counts as one in-flight unit: Shutdown drains
		// it like a pending RPC instead of cutting a half-written block.
		s.mu.Lock()
		if s.down || s.data == nil {
			s.mu.Unlock()
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()
		s.data(s.baseCtx, nc, br)
		return
	}
	for {
		var req request
		if err := readFrame(br, &req); err != nil {
			return
		}
		// The serving side consults the fault hook too: a partition
		// severs requests already in flight from the far side, not
		// just new dials.
		if s.faults != nil {
			if err := s.faults.FailMessage(req.From, s.name); err != nil {
				return
			}
		}
		// Admission and wg.Add happen under the same lock Shutdown
		// takes before waiting, so a request is either rejected or
		// fully drained — never lost in between.
		s.mu.Lock()
		if s.down {
			s.mu.Unlock()
			s.reply(nc, &wmu, req.ID, nil, fmt.Errorf("svc: %s rejecting %s: %w", s.name, req.Method, ErrShuttingDown))
			continue
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		go func(req request) {
			defer s.inflight.Done()
			ctx := s.baseCtx
			if req.DeadlineMS > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
				defer cancel()
			}
			// Admission happens inside the request goroutine so a queued
			// wait never blocks the connection's read loop, and the wait
			// is bounded by the request's own deadline budget.
			release, aerr := s.admit.Load().acquire(ctx, classOf(req.Method))
			if aerr != nil {
				s.reply(nc, &wmu, req.ID, nil, fmt.Errorf("svc: %s shedding %s: %w", s.name, req.Method, aerr))
				return
			}
			defer release()
			result, err := s.handler(ctx, req.From, req.Method, req.Params)
			s.reply(nc, &wmu, req.ID, result, err)
		}(req)
	}
}

// reply writes one response frame (result xor err).
func (s *Server) reply(nc net.Conn, wmu *sync.Mutex, id uint64, result any, err error) {
	resp := response{ID: id}
	if err != nil {
		encodeError(&resp, err)
	} else {
		raw, merr := marshalResult(result)
		if merr != nil {
			encodeError(&resp, merr)
		} else {
			resp.Result = raw
		}
	}
	wmu.Lock()
	defer wmu.Unlock()
	if werr := writeFrame(nc, resp); werr != nil {
		_ = nc.Close() // framing is gone; reader sees EOF and cleans up
	}
}

// Crash force-closes the server without drain: the listener and every
// connection drop immediately and in-flight handlers lose their reply
// path — the transport shape of SIGKILL, for crash-recovery tests.
func (s *Server) Crash() {
	s.baseCancel() // in-flight handlers die with the process image
	s.mu.Lock()
	s.down = true
	ln := s.ln
	for nc := range s.conns {
		_ = nc.Close() // reader goroutines see the error and unregister
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
}

// Shutdown stops accepting, rejects new requests, waits for in-flight
// handlers to drain (bounded by ctx), then closes all connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return nil
	}
	s.down = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("svc: shutdown of %s: %w", s.name, ctx.Err())
	}
	// Drain window over: cancel whatever is still running.
	s.baseCancel()

	s.mu.Lock()
	for nc := range s.conns {
		_ = nc.Close()
	}
	s.mu.Unlock()
	return err
}

package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/shard"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestShardedCrashRecoverySoak is the sharded-namespace headline: a
// NameNode running 4 namespace shards, each with its own journal
// under one WAL root, takes a multi-tenant workload, is SIGKILL'd
// mid-stream, restarts from the sharded layout, and must prove:
//
//  1. No acknowledged write lost — every acked file reads back
//     byte-for-byte, deletes stay deleted.
//  2. Per-shard bit-determinism — each shard's post-restart
//     fingerprint matches its pre-crash fingerprint, and two
//     independent replays of each shard's log agree.
//  3. Tenant quotas survive recovery — usage is recomputed from the
//     recovered namespace and admission control still enforces the
//     configured ceilings.
func TestShardedCrashRecoverySoak(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	cfg := NameNodeConfig{
		BlockSize:     512,
		Replication:   2,
		WALDir:        dir,
		SnapshotEvery: 8,
		Shards:        shards,
		TenantQuotas: map[string]shard.Quota{
			"acme": {MaxFiles: 1000},
			"beta": {MaxFiles: 4, MaxRF: 2},
		},
	}
	lc := bootDurable(t, 4, 91, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl := lc.Client("soak")
	defer func() { cl.Close() }()

	acked := map[string][]byte{}
	write := func(name string, i int) {
		t.Helper()
		data := durablePayload(i, 600+i*97)
		if _, _, err := cl.CopyFromLocal(ctx, name, data, i%2 == 0); err != nil {
			t.Fatalf("write %q: %v", name, err)
		}
		acked[name] = data
	}
	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("@acme/f-%03d", i), i)
	}
	for i := 0; i < 3; i++ {
		write(fmt.Sprintf("@beta/g-%03d", i), 10+i)
	}
	for i := 0; i < 6; i++ {
		write(fmt.Sprintf("plain-%03d", i), 20+i)
	}
	if err := cl.Delete(ctx, "@acme/f-001"); err != nil {
		t.Fatal(err)
	}
	delete(acked, "@acme/f-001")

	// Tenant beta is at 3 of 4 files: one more fits, the next must be
	// vetoed with the quota sentinel across the wire.
	write("@beta/g-003", 13)
	if _, _, err := cl.CopyFromLocal(ctx, "@beta/g-004", durablePayload(14, 700), false); !errors.Is(err, shard.ErrQuota) {
		t.Fatalf("over-quota create err = %v, want shard.ErrQuota", err)
	}

	// The workload must actually have spread across journals, or the
	// per-shard claims below are vacuous.
	seqs := lc.NN.WALShardSeqs()
	if len(seqs) != shards {
		t.Fatalf("%d shard journals, want %d", len(seqs), shards)
	}
	busy := 0
	for _, sq := range seqs {
		if sq[0] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("workload landed in %d shard journals; test proves nothing", busy)
	}

	preFP := make([]string, shards)
	for i := range preFP {
		preFP[i] = lc.NN.ShardFingerprint(i)
	}

	lc.CrashNameNode()
	cl.Close()
	if err := lc.RestartNameNode(restartCluster(t, 4), stats.NewRNG(92), cfg); err != nil {
		t.Fatalf("restart from sharded WAL: %v", err)
	}
	cl = lc.Client("soak-reborn")

	// (2) Per-shard bit-determinism, live side.
	for i := range preFP {
		if got := lc.NN.ShardFingerprint(i); got != preFP[i] {
			t.Fatalf("shard %d diverged across crash:\n pre %s\npost %s", i, preFP[i], got)
		}
	}
	// …and replay side: two independent recoveries of the root agree
	// shard by shard with the live tables.
	rec1, err := RecoverShards(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := RecoverShards(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		fp1, fp2 := dfs.FingerprintFiles(rec1[i]), dfs.FingerprintFiles(rec2[i])
		if fp1 != fp2 {
			t.Fatalf("shard %d replay nondeterministic:\n 1st %s\n 2nd %s", i, fp1, fp2)
		}
		if fp1 != preFP[i] {
			t.Fatalf("shard %d replay diverged from live:\n replay %s\n   live %s", i, fp1, preFP[i])
		}
	}

	// (1) Zero acked writes lost.
	for name, data := range acked {
		got, err := cl.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("acked file %q unreadable after recovery: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("acked file %q corrupted after recovery", name)
		}
	}
	if _, err := cl.Stat(ctx, "@acme/f-001"); !errors.Is(err, dfs.ErrFileNotFound) {
		t.Fatalf("deleted file resurrected: %v", err)
	}

	// (3) Quota state recomputed from the recovered namespace: beta is
	// full again, releasing one file readmits exactly one more.
	if _, _, err := cl.CopyFromLocal(ctx, "@beta/g-005", durablePayload(15, 700), false); !errors.Is(err, shard.ErrQuota) {
		t.Fatalf("post-recovery over-quota create err = %v, want shard.ErrQuota", err)
	}
	if err := cl.Delete(ctx, "@beta/g-000"); err != nil {
		t.Fatal(err)
	}
	delete(acked, "@beta/g-000")
	if _, _, err := cl.CopyFromLocal(ctx, "@beta/g-005", durablePayload(15, 700), false); err != nil {
		t.Fatalf("post-release create should fit the quota: %v", err)
	}
	// The RF ceiling survived recovery too: beta caps replication at
	// 2, so a 3-replica admission is vetoed even with file headroom.
	if err := lc.NN.Engine().Quotas().Check("beta", 1, 1, 3); !errors.Is(err, shard.ErrQuota) {
		t.Fatalf("RF-over-ceiling admission err = %v, want shard.ErrQuota", err)
	}

	// fsck surfaces the tenancy rollup.
	h := lc.NN.Engine().Health()
	if h.Shards != shards {
		t.Fatalf("fsck shards = %d, want %d", h.Shards, shards)
	}
	foundBeta := false
	for _, tu := range h.Tenants {
		if tu.Tenant == "beta" {
			foundBeta = true
			if tu.Usage.Files != 4 {
				t.Fatalf("beta usage = %d files, want 4", tu.Usage.Files)
			}
		}
	}
	if !foundBeta {
		t.Fatal("fsck tenant rollup missing beta")
	}
}

package svc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestShutdownDrainsInflightAndRejectsNew pins the graceful-shutdown
// contract at the server layer: a request in flight when Shutdown
// begins completes and gets its response; a request arriving after
// rejects with ErrShuttingDown; Shutdown returns only once the
// handler has drained.
func TestShutdownDrainsInflightAndRejectsNew(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := NewServer("test", nil, func(ctx context.Context, from, method string, params []byte) (any, error) {
		if method == "slow" {
			close(entered)
			<-release
		}
		return struct{}{}, nil
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := dialConn(ctx, srv.Addr(), "tester", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var slowErr error
	go func() {
		defer wg.Done()
		slowErr = conn.Call(ctx, "slow", nil, nil)
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()

	// Wait until the server has flipped to draining, then verify new
	// requests on the existing connection are rejected.
	for {
		srv.mu.Lock()
		down := srv.down
		srv.mu.Unlock()
		if down {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := conn.Call(ctx, "fast", nil, nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("call during drain = %v, want ErrShuttingDown", err)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight handler finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
	if slowErr != nil {
		t.Fatalf("in-flight call during graceful shutdown = %v, want success", slowErr)
	}
}

// TestShutdownDeadlineExpires: a handler that never finishes must not
// wedge Shutdown forever — the context bounds the drain.
func TestShutdownDeadlineExpires(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := NewServer("test", nil, func(ctx context.Context, from, method string, params []byte) (any, error) {
		<-block
		return struct{}{}, nil
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := dialConn(ctx, srv.Addr(), "tester", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() { _ = conn.Call(ctx, "wedge", nil, nil) }()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler

	sctx, scancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer scancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

// TestClusterCloseFlushesFinalHeartbeats: Close stops DataNodes
// before the NameNode, so observations recorded but never heartbeated
// still reach the estimator via each node's final flush.
func TestClusterCloseFlushesFinalHeartbeats(t *testing.T) {
	nodes := make([]cluster.Node, 3)
	c, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(c, stats.NewRNG(11), nil, NameNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Record observations without flushing any heartbeat.
	if err := lc.ObserveUptime(1, 500); err != nil {
		t.Fatal(err)
	}
	if err := lc.ObserveInterruption(1, 20); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lc.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}

	est := lc.NN.Engine().Heartbeat().Estimate(1)
	if est.Lambda == 0 || est.Mu != 20 {
		t.Fatalf("final heartbeat not folded: estimate = %+v", est)
	}

	// The NameNode is down now: a fresh client call must fail cleanly,
	// not hang.
	cl := lc.Client("late")
	defer cl.Close()
	short, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if _, err := cl.List(short); err == nil {
		t.Fatal("call to a closed cluster succeeded")
	}
}

package svc

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/chaos"
	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/stats"
)

// TestEstimatesConvergeFromHeartbeatsAlone is the predictor-loop
// soak: M/G/1 churn with known (λ, μ) is injected against the
// DataNodes in virtual time, each node records only its own
// observations, and the NameNode — whose cluster view starts with no
// availability information at all — must recover the injected
// parameters to within 20% purely from the heartbeats crossing the
// wire, then place an ADAPT-distributed file accordingly.
func TestEstimatesConvergeFromHeartbeatsAlone(t *testing.T) {
	// The ground-truth cluster drives the churn generator; the
	// NameNode is booted from an availability-stripped copy so every
	// (λ, μ) it learns can only have arrived via heartbeat.
	truth, err := cluster.NewEmulation(cluster.EmulationConfig{
		Nodes:            4,
		InterruptedRatio: 0.5,
	}, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	if truth.InterruptedCount() != 2 {
		t.Fatalf("interrupted = %d, want 2", truth.InterruptedCount())
	}
	stripped, err := cluster.New(make([]cluster.Node, truth.Len()))
	if err != nil {
		t.Fatal(err)
	}

	lc, err := StartLocalCluster(stripped, stats.NewRNG(22), nil, NameNodeConfig{
		BlockSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Churn in virtual time, with the LocalCluster as both target
	// (liveness flips hit the physical DataNodes) and observer (each
	// node's own recorder accumulates what it saw).
	eng, err := chaos.New(chaos.Config{Cluster: truth, Target: lc, Observer: lc}, stats.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	const rounds, perRound = 40, 100
	for i := 0; i < rounds; i++ {
		if _, err := eng.Run(perRound); err != nil {
			t.Fatal(err)
		}
		// Periodic heartbeats, as the wall-clock loop would send them.
		if err := lc.FlushHeartbeats(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushHeartbeats(ctx); err != nil {
		t.Fatal(err)
	}

	cl := lc.Client("shell")
	defer cl.Close()
	est, err := cl.Estimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for id := cluster.NodeID(0); int(id) < truth.Len(); id++ {
		want := truth.Node(id).Availability
		got := est[id]
		if want.Dedicated() {
			if got.Lambda != 0 {
				t.Errorf("node %d: dedicated node estimated λ=%g", id, got.Lambda)
			}
			continue
		}
		if relErr(got.Lambda, want.Lambda) > 0.20 {
			t.Errorf("node %d: λ̂=%g vs λ=%g (%.1f%% off)", id, got.Lambda, want.Lambda, 100*relErr(got.Lambda, want.Lambda))
		}
		if relErr(got.Mu, want.Mu) > 0.20 {
			t.Errorf("node %d: μ̂=%g vs μ=%g (%.1f%% off)", id, got.Mu, want.Mu, 100*relErr(got.Mu, want.Mu))
		}
	}

	// The learned weights must steer ADAPT placement: a fresh file
	// distributed with the availability-aware policy puts more
	// replicas on the reliable half of the cluster.
	data := make([]byte, 12*1024)
	if _, _, err := cl.CopyFromLocal(ctx, "soak", data, true); err != nil {
		t.Fatal(err)
	}
	counts, err := cl.BlockDistribution(ctx, "soak")
	if err != nil {
		t.Fatal(err)
	}
	flaky, reliable := 0, 0
	for id := 0; id < truth.Len(); id++ {
		if truth.Node(cluster.NodeID(id)).Interrupted() {
			flaky += counts[id]
		} else {
			reliable += counts[id]
		}
	}
	if reliable <= flaky {
		t.Fatalf("ADAPT placement ignored learned weights: flaky=%d reliable=%d (%v)", flaky, reliable, counts)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

// TestStaleHeartbeatRejected: a replayed sequence number must be
// refused so a delayed duplicate cannot rewind the estimator.
func TestStaleHeartbeatRejected(t *testing.T) {
	stripped, err := cluster.New(make([]cluster.Node, 2))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(stripped, stats.NewRNG(31), nil, NameNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Close(ctx)
	})

	if err := lc.NN.foldHeartbeat(heartbeatParams{Node: 0, Seq: 3, Uptime: 100}); err != nil {
		t.Fatal(err)
	}
	err = lc.NN.foldHeartbeat(heartbeatParams{Node: 0, Seq: 3, Uptime: 120})
	if !errors.Is(err, ErrStaleHeartbeat) {
		t.Fatalf("replayed seq accepted: %v", err)
	}
	if err := lc.NN.foldHeartbeat(heartbeatParams{Node: 0, Seq: 4, Uptime: 120, Interruptions: 1, Downtime: 5}); err != nil {
		t.Fatal(err)
	}
	// Totals must never run backwards even with a fresh seq.
	err = lc.NN.foldHeartbeat(heartbeatParams{Node: 0, Seq: 5, Uptime: 60})
	if !errors.Is(err, ErrBadObservation) {
		t.Fatalf("regressing totals accepted: %v", err)
	}
	if err := lc.NN.foldHeartbeat(heartbeatParams{Node: 99, Seq: 1}); !errors.Is(err, ErrUnknownDataNode) {
		t.Fatalf("unknown node accepted: %v", err)
	}
}

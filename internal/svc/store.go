package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
)

// DataNode RPC params/results. Block bytes ride as JSON base64
// ([]byte marshals to base64 in encoding/json).
type putParams struct {
	Block dfs.BlockID `json:"block"`
	Data  []byte      `json:"data"`
}

type getParams struct {
	Block dfs.BlockID `json:"block"`
}

type getResult struct {
	Data []byte `json:"data"`
}

type storedResult struct {
	Data []byte `json:"data"`
	OK   bool   `json:"ok"`
}

// remoteStore is the NameNode's RPC proxy for one DataNode's block
// storage: it implements dfs.BlockStore, so the exact engine code
// paths — createFile, ReadBlock, redistribute, repair — drive remote
// DataNodes over TCP.
//
// Up is the NameNode's liveness belief, not ground truth: it flips
// down when an RPC fails at the transport layer and back up when a
// heartbeat arrives. Transport failures are wrapped in
// dfs.ErrNodeDown per the BlockStore error contract, so the failover
// and retry machinery classifies a partitioned node exactly like a
// crashed one.
type remoteStore struct {
	id   cluster.NodeID
	peer *peerConn

	mu sync.Mutex
	up bool
}

func newRemoteStore(id cluster.NodeID, addr, local, peerName string, faults TransportFaults) *remoteStore {
	return &remoteStore{
		id:   id,
		peer: newPeerConn(addr, local, peerName, faults),
		up:   true,
	}
}

func (s *remoteStore) ID() cluster.NodeID { return s.id }

func (s *remoteStore) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up
}

func (s *remoteStore) SetUp(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.up = up
}

// call performs one RPC against the DataNode. Transport-layer
// failures (dial refused, connection severed, partition) mark the
// store down and come back wrapping dfs.ErrNodeDown; errors the peer
// itself returned pass through with their own taxonomy.
func (s *remoteStore) call(ctx context.Context, method string, params, result any) error {
	err := s.peer.call(ctx, method, params, result)
	if err == nil {
		return nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return err // the peer answered; its error speaks for itself
	}
	s.SetUp(false)
	return fmt.Errorf("%w: datanode %d unreachable: %v", dfs.ErrNodeDown, s.id, err)
}

func (s *remoteStore) Put(ctx context.Context, id dfs.BlockID, data []byte) error {
	return s.call(ctx, "dn.put", putParams{Block: id, Data: data}, nil)
}

func (s *remoteStore) Get(ctx context.Context, id dfs.BlockID) ([]byte, error) {
	var res getResult
	if err := s.call(ctx, "dn.get", getParams{Block: id}, &res); err != nil {
		return nil, err
	}
	return res.Data, nil
}

func (s *remoteStore) Delete(ctx context.Context, id dfs.BlockID) error {
	return s.call(ctx, "dn.delete", getParams{Block: id}, nil)
}

func (s *remoteStore) StoredData(ctx context.Context, id dfs.BlockID) ([]byte, bool) {
	var res storedResult
	if err := s.call(ctx, "dn.stored", getParams{Block: id}, &res); err != nil {
		return nil, false
	}
	return res.Data, res.OK
}

// close tears down the proxy's cached connection.
func (s *remoteStore) close() { s.peer.close() }

func unmarshalParams(params []byte, v any) error {
	if err := json.Unmarshal(params, v); err != nil {
		return fmt.Errorf("%w: params: %v", ErrBadFrame, err)
	}
	return nil
}

package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
)

// DataNode RPC params/results. Block bytes ride as JSON base64
// ([]byte marshals to base64 in encoding/json).
type putParams struct {
	Block dfs.BlockID `json:"block"`
	Data  []byte      `json:"data"`
}

type getParams struct {
	Block dfs.BlockID `json:"block"`
}

type getResult struct {
	Data []byte `json:"data"`
}

type storedResult struct {
	Data []byte `json:"data"`
	OK   bool   `json:"ok"`
}

type blocksResult struct {
	Blocks []dfs.BlockID `json:"blocks"`
}

// remoteStore is the NameNode's RPC proxy for one DataNode's block
// storage: it implements dfs.BlockStore, so the exact engine code
// paths — createFile, ReadBlock, redistribute, repair — drive remote
// DataNodes over TCP.
//
// Up is the NameNode's liveness belief, not ground truth: it flips
// down when an RPC fails at the transport layer and back up when a
// heartbeat arrives. Transport failures are wrapped in
// dfs.ErrNodeDown per the BlockStore error contract, so the failover
// and retry machinery classifies a partitioned node exactly like a
// crashed one.
type remoteStore struct {
	id   cluster.NodeID
	peer *peerConn

	// The binary data plane (wire2.go). binary selects v2 streams for
	// block bytes; resolve maps chain node ids to data addresses for
	// pipeline writes; scrub best-effort deletes a possibly-committed
	// replica on another chain node after a torn pipeline, so deep
	// commits whose acks were lost do not linger as orphans. scrub is
	// invoked from a goroutine with the (live) op context: the hook
	// waits for the op to settle before acting, so it never races the
	// engine's same-block retry, and bounds its own deadline so a gray
	// holder cannot pin the goroutine. The JSON control plane (deletes,
	// inventory, liveness) is untouched.
	binary  bool
	resolve func(cluster.NodeID) (string, bool)
	scrub   func(ctx context.Context, node cluster.NodeID, id dfs.BlockID)

	// brk, when non-nil, is this node's client-side circuit breaker:
	// a run of transport failures opens it, fast-failing further calls
	// (one nil check instead of one deadline each) and flipping Up()
	// false so the availability-aware replica ordering routes around
	// the node until a half-open probe succeeds. See breaker.go.
	brk *breaker

	// notePeer, when set, routes deep-pipeline evidence to the fleet:
	// commit and setup acks name OTHER chain nodes whose hop failed (or
	// worked), and that evidence must reach those nodes' breakers — a
	// gray node that never heads a chain would otherwise stall every
	// write that includes it, forever, because only head-of-chain
	// failures are observed directly.
	notePeer func(node cluster.NodeID, ok bool)

	mu sync.Mutex
	up bool
}

func newRemoteStore(id cluster.NodeID, addr, local, peerName string, faults TransportFaults) *remoteStore {
	return &remoteStore{
		id:   id,
		peer: newPeerConn(addr, local, peerName, faults),
		up:   true,
	}
}

func (s *remoteStore) ID() cluster.NodeID { return s.id }

func (s *remoteStore) Up() bool {
	if s.brk.blocked() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up
}

func (s *remoteStore) SetUp(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.up = up
}

// call performs one RPC against the DataNode. Transport-layer
// failures (dial refused, connection severed, partition) mark the
// store down and come back wrapping dfs.ErrNodeDown; errors the peer
// itself returned pass through with their own taxonomy.
func (s *remoteStore) call(ctx context.Context, method string, params, result any) error {
	probe, admitted := s.brk.admit()
	if !admitted {
		return fmt.Errorf("%w: datanode %d circuit open, fast-failing", dfs.ErrNodeDown, s.id)
	}
	err := s.peer.call(ctx, method, params, result)
	if err == nil {
		s.brk.record(probe, true)
		return nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		// The peer answered: the wire works, whatever it said.
		s.brk.record(probe, true)
		return err
	}
	if errors.Is(ctx.Err(), context.Canceled) {
		// The caller abandoned the call (a hedge race lost, an
		// operation cancelled): the failure proves nothing about the
		// node, so neither the breaker nor the liveness belief moves.
		s.brk.forget(probe)
		return fmt.Errorf("svc: %s to datanode %d abandoned: %w", method, s.id, err)
	}
	s.brk.record(probe, false)
	s.SetUp(false)
	return fmt.Errorf("%w: datanode %d unreachable: %v", dfs.ErrNodeDown, s.id, err)
}

func (s *remoteStore) Put(ctx context.Context, id dfs.BlockID, data []byte) error {
	if s.binary {
		res, ok := s.PutChain(ctx, id, data, nil)
		if ok {
			if err, failed := res.Failed[s.id]; failed {
				return err
			}
			return nil
		}
	}
	return s.call(ctx, "dn.put", putParams{Block: id, Data: data}, nil)
}

// PutChain streams the block to this node and onward through rest over
// one v2 pipeline (dfs.PipelinePutter). ok is false when the binary
// data plane is disabled — the engine then falls back to fan-out.
func (s *remoteStore) PutChain(ctx context.Context, id dfs.BlockID, data []byte, rest []cluster.NodeID) (dfs.PipelineResult, bool) {
	if !s.binary {
		return dfs.PipelineResult{}, false
	}
	res := dfs.PipelineResult{Failed: make(map[cluster.NodeID]error, 1+len(rest))}
	chain := make([]chainEntry, 0, 1+len(rest))
	chain = append(chain, chainEntry{Node: s.id, Addr: s.peer.addr})
	for _, n := range rest {
		addr, ok := "", false
		if s.resolve != nil {
			addr, ok = s.resolve(n)
		}
		if !ok {
			// Misconfiguration, not an outage: surface it per-node and
			// pipeline through the resolvable prefix.
			res.Failed[n] = fmt.Errorf("%w: no data address for node %d", dfs.ErrUnknownNode, n)
			continue
		}
		chain = append(chain, chainEntry{Node: n, Addr: addr})
	}
	probe, admitted := s.brk.admit()
	if !admitted {
		cause := fmt.Errorf("%w: datanode %d circuit open, fast-failing", dfs.ErrNodeDown, s.id)
		for _, ce := range chain {
			res.Failed[ce.Node] = cause
		}
		return res, true
	}
	acks, err := pipelinePut(ctx, s.peer.local, s.peer.faults, chain, id, data)
	s.brk.record(probe, err == nil)
	if err != nil {
		// The stream broke: no commit acks, so whether any chain node
		// committed is unknown. Mark everything down-failed; cleanup of
		// possibly-committed deep replicas happens off the request path —
		// a scrub toward the very node that stalled the pipeline stalls
		// just as long, and running it inline would hold the caller's
		// admission slot (and the writer's remaining budget) hostage.
		// The scrub hook owns the deferral: it waits for the op to
		// settle, re-checks metadata, and bounds its own deadline.
		s.SetUp(false)
		cause := fmt.Errorf("%w: datanode %d pipeline unreachable: %v", dfs.ErrNodeDown, s.id, err)
		for _, ce := range chain {
			res.Failed[ce.Node] = cause
		}
		if s.scrub != nil {
			nodes := make([]cluster.NodeID, len(chain))
			for i, ce := range chain {
				nodes[i] = ce.Node
			}
			go func() {
				for _, n := range nodes {
					s.scrub(ctx, n, id)
				}
			}()
		}
		return res, true
	}
	acked := make(map[cluster.NodeID]bool, len(acks))
	for _, e := range acks {
		if e.OK {
			acked[e.Node] = true
			s.peerEvidence(e.Node, true)
		} else if rerr := e.err(); rerr != nil {
			res.Failed[e.Node] = fmt.Errorf("svc: pipeline put block %d on datanode %d: %w", id, e.Node, rerr)
			// A node-down ack is transport evidence about that node; an
			// application error (overload shed, full disk) means its
			// wire works fine.
			s.peerEvidence(e.Node, !errors.Is(rerr, dfs.ErrNodeDown))
		}
	}
	// Acked in chain order, so the engine's replica lists match what
	// fan-out over the same holders would have produced.
	for _, ce := range chain {
		if acked[ce.Node] {
			res.Acked = append(res.Acked, ce.Node)
		} else if _, reported := res.Failed[ce.Node]; !reported {
			res.Failed[ce.Node] = fmt.Errorf("%w: datanode %d missing from pipeline ack", dfs.ErrNodeDown, ce.Node)
		}
	}
	return res, true
}

// peerEvidence forwards one other chain node's hop outcome to the
// fleet (no-op for this node itself or when unwired).
func (s *remoteStore) peerEvidence(n cluster.NodeID, ok bool) {
	if s.notePeer != nil && n != s.id {
		s.notePeer(n, ok)
	}
}

func (s *remoteStore) Get(ctx context.Context, id dfs.BlockID) ([]byte, error) {
	if s.binary {
		probe, admitted := s.brk.admit()
		if !admitted {
			return nil, fmt.Errorf("%w: datanode %d circuit open, fast-failing", dfs.ErrNodeDown, s.id)
		}
		data, err := streamGet(ctx, s.peer.local, s.peer.faults, s.peer.addr, s.peer.peer, id)
		if err == nil {
			s.brk.record(probe, true)
			return data, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// The peer answered: the wire works, whatever it said.
			s.brk.record(probe, true)
			return nil, err
		}
		if errors.Is(ctx.Err(), context.Canceled) {
			// A lost hedge race or abandoned read: the cancellation is
			// ours, not the node's, so its breaker and liveness belief
			// stay put.
			s.brk.forget(probe)
			return nil, fmt.Errorf("svc: get block %d from datanode %d abandoned: %w", id, s.id, err)
		}
		s.brk.record(probe, false)
		s.SetUp(false)
		return nil, fmt.Errorf("%w: datanode %d unreachable: %v", dfs.ErrNodeDown, s.id, err)
	}
	var res getResult
	if err := s.call(ctx, "dn.get", getParams{Block: id}, &res); err != nil {
		return nil, err
	}
	return res.Data, nil
}

func (s *remoteStore) Delete(ctx context.Context, id dfs.BlockID) error {
	return s.call(ctx, "dn.delete", getParams{Block: id}, nil)
}

func (s *remoteStore) StoredData(ctx context.Context, id dfs.BlockID) ([]byte, bool) {
	var res storedResult
	if err := s.call(ctx, "dn.stored", getParams{Block: id}, &res); err != nil {
		return nil, false
	}
	return res.Data, res.OK
}

// StoredBlocks fetches the node's block inventory (dfs.BlockLister);
// ok is false when the node is unreachable.
func (s *remoteStore) StoredBlocks(ctx context.Context) ([]dfs.BlockID, bool) {
	var res blocksResult
	if err := s.call(ctx, "dn.blocks", struct{}{}, &res); err != nil {
		return nil, false
	}
	return res.Blocks, true
}

// close tears down the proxy's cached connection.
func (s *remoteStore) close() { s.peer.close() }

func unmarshalParams(params []byte, v any) error {
	if err := json.Unmarshal(params, v); err != nil {
		return fmt.Errorf("%w: params: %v", ErrBadFrame, err)
	}
	return nil
}

package svc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
)

// Client side of the v2 data plane (see wire2.go): dedicated stream
// connections carrying pipeline writes and chunked reads. One
// connection carries one stream; multiplexing stays on the JSON
// control plane, where frames are small.

// streamIDs mints stream ids. With one stream per connection the id
// is diagnostic — it ties the frames of a stream together in traces
// and guards against crossed frames.
var streamIDs atomic.Uint64

// dataConn is one dialed v2 stream connection: buffered both ways so
// a 20-byte header and its payload leave in one syscall.
type dataConn struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	stop func() bool // cancels the context watcher
}

// connPast is the deadline used to abort a stream's blocked I/O when
// its context is cancelled: any instant in the past works.
var connPast = time.Unix(1, 0)

// dialData opens a v2 stream to addr: fault hook first (a partitioned
// endpoint cannot even dial, and injected latency is paid once per
// stream), then the preamble. The stream inherits ctx end to end —
// its deadline becomes the connection deadline, and cancellation
// aborts blocked reads and writes mid-stream.
func dialData(ctx context.Context, addr, local, peer string, faults TransportFaults) (*dataConn, error) {
	if faults != nil {
		if err := faults.FailMessage(local, peer); err != nil {
			return nil, fmt.Errorf("svc: data dial %s: %w", addr, err)
		}
		if d := faults.MessageDelay(local, peer); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("svc: data dial %s: %w", addr, ctx.Err())
			}
		}
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("svc: data dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = nc.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { _ = nc.SetDeadline(connPast) })
	dc := &dataConn{
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		bw:   bufio.NewWriterSize(nc, 32<<10),
		stop: stop,
	}
	if _, err := dc.bw.Write(dataPreamble[:]); err != nil {
		dc.close()
		return nil, fmt.Errorf("svc: data dial %s: %w", addr, err)
	}
	return dc, nil
}

func (c *dataConn) close() {
	c.stop()
	_ = c.nc.Close()
}

// rearm detaches the conn's current context watchdog and re-arms it on
// parent: deadline from parent, cancellation poisons as before. Used
// when a sub-budget phase (stream setup) completes and the connection
// graduates to the stream's full budget. Reports false when the old
// watchdog already fired — the sub-budget expired and the conn is
// poisoned, so the caller must treat the setup as failed.
func (c *dataConn) rearm(parent context.Context) bool {
	if !c.stop() {
		return false
	}
	if dl, ok := parent.Deadline(); ok {
		_ = c.nc.SetDeadline(dl)
	} else {
		_ = c.nc.SetDeadline(time.Time{})
	}
	c.stop = context.AfterFunc(parent, func() { _ = c.nc.SetDeadline(connPast) })
	return true
}

// dialDataSetup dials a v2 stream under a setup budget — a quarter of
// ctx's remaining deadline — then re-arms the connection on the full
// budget. Dialing is where a gray peer (alive heartbeats, crawling
// service) stalls, and without the sub-budget one gray hop silently
// eats the caller's whole deadline: the op times out, the failure gets
// blamed on whatever node the caller dialed, and no budget is left to
// fail over. Bounding setup keeps a gray hop's cost to a slice of the
// budget, leaves the rest for alternates, and — for pipeline relays —
// lets the setup ack naming the actual stalled node reach the writer
// in time. Deadline-free contexts dial without a sub-budget.
func dialDataSetup(ctx context.Context, addr, local, peer string, faults TransportFaults) (*dataConn, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		return dialData(ctx, addr, local, peer, faults)
	}
	//lint:ignore determinism carving a setup slice out of a wall-clock deadline needs the wall clock; deadline-free contexts take the branch above
	rem := time.Until(dl)
	if rem <= 0 {
		return nil, fmt.Errorf("svc: data dial %s: %w", addr, context.DeadlineExceeded)
	}
	setupCtx, cancel := context.WithTimeout(ctx, rem/4)
	defer cancel()
	dc, err := dialData(setupCtx, addr, local, peer, faults)
	if err != nil {
		return nil, err
	}
	if !dc.rearm(ctx) {
		dc.close()
		return nil, fmt.Errorf("svc: data dial %s: setup budget: %w", addr, context.DeadlineExceeded)
	}
	return dc, nil
}

// pipelinePut streams one block through the replication chain
// (chain[0] is dialed; the rest ride in the open frame for the relays)
// and returns the commit-phase ack entries, one per chain node, in
// chain order. A nil error means the commit acks arrived — individual
// nodes may still report failure in their entries. A non-nil error
// means the stream broke and the commit outcome of every chain node
// is unknown: the caller must treat all of them as unacked and clean
// up best-effort.
func pipelinePut(ctx context.Context, local string, faults TransportFaults, chain []chainEntry, id dfs.BlockID, data []byte) ([]ackEntry, error) {
	dc, err := dialDataSetup(ctx, chain[0].Addr, local, endpointName(chain[0].Node), faults)
	if err != nil {
		return nil, err
	}
	defer dc.close()
	sid := streamIDs.Add(1)
	ow := openWrite{
		Block: id,
		Size:  int64(len(data)),
		//lint:ignore determinism encoding the ctx deadline as a wire budget needs the wall clock; simulations drive the transport with deadline-free contexts
		DeadlineMS: deadlineBudget(ctx, time.Now()),
		From:       local,
		Chain:      chain[1:],
	}
	if err := writeFrame2(dc.bw, frameOpenWrite, 0, sid, encodeOpenWrite(ow)); err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
	}
	if err := dc.bw.Flush(); err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
	}

	sf, err := readFrame2(dc.br)
	if err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: setup: %w", id, err)
	}
	if sf.Type != frameSetupAck || sf.Stream != sid {
		sf.release()
		return nil, fmt.Errorf("%w: pipeline put block %d: unexpected setup frame type %d", ErrBadFrame, id, sf.Type)
	}
	setup, err := decodeAcks(sf.Payload)
	sf.release()
	if err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
	}
	accepting := 0
	for _, e := range setup {
		if e.OK {
			accepting++
		}
	}
	if accepting == 0 {
		// Early abort: nobody admitted the stream, so there is nothing
		// to send — the setup entries are the final outcome.
		return setup, nil
	}

	peer := endpointName(chain[0].Node)
	for off := 0; ; {
		n := len(data) - off
		if n > DefaultChunkSize {
			n = DefaultChunkSize
		}
		last := off+n == len(data)
		var flags uint16
		if last {
			flags = flagLast
		}
		// A partition formed mid-stream severs the remaining chunks,
		// exactly as it severs queued JSON calls.
		if faults != nil {
			if ferr := faults.FailMessage(local, peer); ferr != nil {
				return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, ferr)
			}
		}
		if err := writeFrame2(dc.bw, frameChunk, flags, sid, data[off:off+n]); err != nil {
			return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
		}
		off += n
		if last {
			break
		}
	}
	if err := dc.bw.Flush(); err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
	}

	cf, err := readFrame2(dc.br)
	if err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: commit: %w", id, err)
	}
	if cf.Type != frameCommitAck || cf.Stream != sid {
		cf.release()
		return nil, fmt.Errorf("%w: pipeline put block %d: unexpected commit frame type %d", ErrBadFrame, id, cf.Type)
	}
	acks, err := decodeAcks(cf.Payload)
	cf.release()
	if err != nil {
		return nil, fmt.Errorf("svc: pipeline put block %d: %w", id, err)
	}
	return acks, nil
}

// streamGet reads one block over a v2 stream: open, header announcing
// the total size, then chunks assembled into a single buffer owned by
// the caller. A server-side failure arrives as an error frame whose
// taxonomy survives rehydration (errors.Is, IsTransient).
func streamGet(ctx context.Context, local string, faults TransportFaults, addr, peer string, id dfs.BlockID) ([]byte, error) {
	dc, err := dialDataSetup(ctx, addr, local, peer, faults)
	if err != nil {
		return nil, err
	}
	defer dc.close()
	sid := streamIDs.Add(1)
	or := openRead{
		Block: id,
		//lint:ignore determinism encoding the ctx deadline as a wire budget needs the wall clock; simulations drive the transport with deadline-free contexts
		DeadlineMS: deadlineBudget(ctx, time.Now()),
		From:       local,
	}
	if err := writeFrame2(dc.bw, frameOpenRead, 0, sid, encodeOpenRead(or)); err != nil {
		return nil, fmt.Errorf("svc: stream get block %d: %w", id, err)
	}
	if err := dc.bw.Flush(); err != nil {
		return nil, fmt.Errorf("svc: stream get block %d: %w", id, err)
	}

	hf, err := readFrame2(dc.br)
	if err != nil {
		return nil, fmt.Errorf("svc: stream get block %d: %w", id, err)
	}
	if hf.Type == frameError {
		rerr := decodeErrorFrame(hf.Payload)
		hf.release()
		return nil, fmt.Errorf("svc: stream get block %d: %w", id, rerr)
	}
	if hf.Type != frameReadHdr || hf.Stream != sid {
		hf.release()
		return nil, fmt.Errorf("%w: stream get block %d: unexpected frame type %d", ErrBadFrame, id, hf.Type)
	}
	size, err := decodeReadHdr(hf.Payload)
	hf.release()
	if err != nil {
		return nil, fmt.Errorf("svc: stream get block %d: %w", id, err)
	}
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: stream get block %d announces %d bytes", ErrFrameTooLarge, id, size)
	}

	// The result buffer is returned to the caller (who keeps it), so
	// it is allocated, not pooled; the chunk buffers it is assembled
	// from are pooled and released per frame.
	buf := make([]byte, 0, size)
	for {
		cf, err := readFrame2(dc.br)
		if err != nil {
			return nil, fmt.Errorf("svc: stream get block %d: %w", id, err)
		}
		if cf.Type == frameError {
			rerr := decodeErrorFrame(cf.Payload)
			cf.release()
			return nil, fmt.Errorf("svc: stream get block %d: %w", id, rerr)
		}
		if cf.Type != frameChunk {
			cf.release()
			return nil, fmt.Errorf("%w: stream get block %d: unexpected frame type %d", ErrBadFrame, id, cf.Type)
		}
		if int64(len(buf))+int64(len(cf.Payload)) > size {
			cf.release()
			return nil, fmt.Errorf("%w: stream get block %d overflows announced size %d", ErrBadFrame, id, size)
		}
		buf = append(buf, cf.Payload...)
		last := cf.last()
		cf.release()
		if last {
			break
		}
	}
	if int64(len(buf)) != size {
		return nil, fmt.Errorf("%w: stream get block %d: got %d of %d bytes", ErrBadFrame, id, len(buf), size)
	}
	return buf, nil
}

package svc

import (
	"bufio"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
)

// TestStreamGetAbandonedMidChunkReleasesBuffers pins the reader-side
// pool contract: when a read stream's deadline fires between chunks —
// a pooled chunk already consumed, more announced but never sent —
// every pooled buffer the client acquired must be back in the pool.
// The server is a stall: it answers the open with a header promising
// three chunks, delivers one, and goes silent.
func TestStreamGetAbandonedMidChunkReleasesBuffers(t *testing.T) {
	start := frameBufs.balance()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stall := make(chan struct{})
	defer close(stall)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		br := bufio.NewReader(nc)
		var pre [4]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			return
		}
		f, err := readFrame2(br)
		if err != nil {
			return
		}
		sid := f.Stream
		f.release()
		bw := bufio.NewWriterSize(nc, 32<<10)
		if writeFrame2(bw, frameReadHdr, 0, sid, encodeReadHdr(3*DefaultChunkSize)) != nil {
			return
		}
		if writeFrame2(bw, frameChunk, 0, sid, make([]byte, DefaultChunkSize)) != nil {
			return
		}
		if bw.Flush() != nil {
			return
		}
		<-stall // hold the conn open, never sending chunk 2
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := streamGet(ctx, "reader", nil, ln.Addr().String(), "stall-dn", dfs.BlockID(7)); err == nil {
		t.Fatal("streamGet succeeded against a stalled stream, want deadline error")
	}
	requirePoolBalance(t, start)
}

// TestServeWriteTornMidChunkReleasesBuffers pins the server-side pool
// contract: a writer that opens a pipeline stream, sends part of the
// block, and vanishes must not leak the datanode's pooled assembly
// buffer (or the in-flight chunk frame), and must leave nothing
// committed.
func TestServeWriteTornMidChunkReleasesBuffers(t *testing.T) {
	lc := testCluster(t, 2, nil)
	start := frameBufs.balance()

	dn, err := lc.DataNode(0)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", dn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	bw := bufio.NewWriterSize(nc, 32<<10)
	br := bufio.NewReader(nc)
	if _, err := bw.Write(dataPreamble[:]); err != nil {
		t.Fatal(err)
	}
	ow := openWrite{Block: 99, Size: 2048, DeadlineMS: 5000, From: "torn-writer"}
	if err := writeFrame2(bw, frameOpenWrite, 0, 1, encodeOpenWrite(ow)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	sf, err := readFrame2(br)
	if err != nil {
		t.Fatalf("setup ack: %v", err)
	}
	if sf.Type != frameSetupAck {
		sf.release()
		t.Fatalf("setup reply type = %d, want setup ack", sf.Type)
	}
	sf.release()
	// Half the block, not flagged last — then the writer dies.
	if err := writeFrame2(bw, frameChunk, 0, 1, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := nc.Close(); err != nil {
		t.Fatal(err)
	}

	// The datanode's assembly buffer and the received chunk frame must
	// drain back to the pool once the stream tears.
	requirePoolBalance(t, start)
}

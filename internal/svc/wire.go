package svc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/shard"
)

// MaxFrameSize bounds one wire frame. Blocks ride inside JSON
// base64, so the bound must clear the 64 MB HDFS default block plus
// encoding overhead.
const MaxFrameSize = 128 << 20

// TransportFaults is the hook through which a chaos engine perturbs
// the wire layer. Both the dialing side (per call) and the serving
// side (per received request) consult it; chaos.NetFaults implements
// it. Implementations must be safe for concurrent use.
type TransportFaults interface {
	// FailMessage may return a non-nil error to sever the message
	// between the named endpoints; the transport fails the call and
	// drops the connection, emulating a partition or message loss.
	FailMessage(from, to string) error
	// MessageDelay returns injected latency imposed before the
	// message is sent.
	MessageDelay(from, to string) time.Duration
}

// request is the wire envelope for one RPC.
type request struct {
	ID     uint64 `json:"id"`
	From   string `json:"from,omitempty"`
	Method string `json:"method"`
	// DeadlineMS carries the caller's remaining deadline budget in
	// milliseconds; 0 means no deadline. The server derives the
	// handler context from it, so deadlines propagate end to end.
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	Params     json.RawMessage `json:"params,omitempty"`
}

// response is the wire envelope for one RPC result.
type response struct {
	ID        uint64          `json:"id"`
	Code      string          `json:"code,omitempty"`
	Error     string          `json:"error,omitempty"`
	Transient bool            `json:"transient,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// writeFrame marshals v and writes it as one length-prefixed frame.
// Callers serialize access to w.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("svc: encode frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("svc: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("svc: write frame body: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("svc: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	// Pooled body, released on every path: json.Unmarshal never keeps
	// a reference to its input (json.RawMessage fields copy), so the
	// buffer is dead once this returns.
	body := frameBufs.get(int(n))
	defer frameBufs.put(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("svc: read frame body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return nil
}

// marshalResult encodes a handler's result for the response envelope.
// A nil result becomes JSON null, which still decodes cleanly into
// any caller-side result type.
func marshalResult(result any) (json.RawMessage, error) {
	b, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("svc: encode result: %w", err)
	}
	return b, nil
}

// encodeError fills a response's error fields from an error chain:
// the first matching wire code, the printable message, and the
// transient classification.
func encodeError(resp *response, err error) {
	resp.Code = codeFor(err)
	resp.Error = err.Error()
	resp.Transient = dfs.IsTransient(err)
}

// decodeError rehydrates a response's error fields. nil when the
// response carries no error.
func decodeError(resp *response) error {
	if resp.Error == "" && resp.Code == "" {
		return nil
	}
	return &RemoteError{
		Code:     resp.Code,
		Msg:      resp.Error,
		IsRetry:  resp.Transient,
		sentinel: sentinelFor(resp.Code),
	}
}

// deadlineBudget converts a context deadline into the wire's
// remaining-milliseconds form (0 = none). now is time.Now at call
// time.
func deadlineBudget(ctx context.Context, now time.Time) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := dl.Sub(now).Milliseconds()
	if ms < 1 {
		return 1 // expired or sub-millisecond: force an immediate server-side timeout
	}
	return ms
}

func init() {
	// The dfs taxonomy crosses the wire so shell clients and the
	// NameNode's remote stores classify failures exactly like
	// in-process callers. Transient-vs-permanent travels separately
	// in the response envelope.
	registerCode("file_exists", dfs.ErrFileExists)
	registerCode("file_not_found", dfs.ErrFileNotFound)
	registerCode("block_not_found", dfs.ErrBlockNotFound)
	registerCode("no_replica", dfs.ErrNoReplica)
	registerCode("bad_block_size", dfs.ErrBadBlockSize)
	registerCode("bad_replication", dfs.ErrBadReplication)
	registerCode("node_down", dfs.ErrNodeDown)
	registerCode("checksum", dfs.ErrChecksum)
	registerCode("no_live_nodes", dfs.ErrNoLiveNodes)
	registerCode("unknown_node", dfs.ErrUnknownNode)
	registerCode("inconsistent", dfs.ErrInconsistent)
	registerCode("not_local", dfs.ErrNotLocal)
	registerCode("journal", dfs.ErrJournal)
	registerCode("overload", dfs.ErrOverload)
	registerCode("quota", shard.ErrQuota)
	registerCode("deadline", context.DeadlineExceeded)
	registerCode("canceled", context.Canceled)
}

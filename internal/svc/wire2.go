package svc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
)

// Wire protocol v2: the binary block data path. The JSON envelope
// (wire.go) remains the control plane — metadata RPCs, heartbeats,
// deletes — while block bytes move as compact binary frames over
// dedicated streams: one TCP connection per pipeline write or
// streaming read, opened with a 4-byte preamble so both protocols
// share every listener.
//
// Frame layout (big-endian), 20-byte header:
//
//	offset 0      version byte (0x02)
//	offset 1      frame type
//	offset 2-3    flags (bit 0: last chunk of the stream)
//	offset 4-11   stream id
//	offset 12-15  payload length
//	offset 16-19  CRC32C over header[0:16] + payload
//
// The CRC covers the header prefix too, so a flipped type, flag, or
// length is caught, not just payload corruption. Chunk payloads are
// raw block bytes; control payloads (open, acks, errors) use a
// length-prefixed binary encoding, never JSON — the data plane stays
// allocation-light end to end.
const (
	frameVersion = 0x02
	headerSize   = 20

	// MaxChunkPayload bounds one v2 frame's payload. Blocks larger
	// than this cross the wire as multiple chunks.
	MaxChunkPayload = 4 << 20

	// DefaultChunkSize is the streaming granularity for block data:
	// large enough to amortize syscalls, small enough that pooled
	// buffers stay cache-friendly and partitions abort streams fast.
	DefaultChunkSize = 256 << 10
)

// dataPreamble is written immediately after dialing a v2 data stream;
// the serving side sniffs it to route the connection to the stream
// handler. Interpreted as a JSON frame length it exceeds MaxFrameSize,
// so a v2 stream hitting a v1-only endpoint fails loudly instead of
// being misparsed.
var dataPreamble = [4]byte{'A', 'B', '2', '\n'}

// Frame types.
const (
	frameOpenWrite uint8 = iota + 1 // writer -> DN: start a pipeline write
	frameOpenRead                   // reader -> DN: start a streaming read
	frameChunk                      // block bytes (flagLast marks the final chunk)
	frameSetupAck                   // DN -> upstream: per-node pipeline admission
	frameCommitAck                  // DN -> upstream: per-node commit status
	frameError                      // DN -> reader: the read failed, with taxonomy
	frameReadHdr                    // DN -> reader: total size of the coming stream
)

// flagLast marks the final chunk of a stream.
const flagLast uint16 = 1 << 0

// crcTable is the Castagnoli polynomial (CRC32C), hardware-accelerated
// on amd64/arm64 — the HDFS data-transfer checksum choice.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// bufPool recycles wire buffers so the hot path makes no per-frame
// allocations. Gets and puts are counted so tests can prove every
// acquired buffer is released on every code path, including errors —
// the discipline that keeps a streaming server from bloating under
// churn. put always counts the release even when the buffer is too
// large to retain.
type bufPool struct {
	pool sync.Pool
	gets atomic.Int64
	puts atomic.Int64
}

// maxPooledBuf caps the buffers the pool retains; anything larger is
// released to the GC after being counted.
const maxPooledBuf = 8 << 20

// get returns a length-n buffer, recycled when one with enough
// capacity is pooled.
func (p *bufPool) get(n int) []byte {
	p.gets.Add(1)
	if v := p.pool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this caller: retire it silently (it was
		// counted at its own get) and allocate fresh.
		p.pool.Put(v)
	}
	return make([]byte, n)
}

// put releases a buffer back to the pool.
func (p *bufPool) put(b []byte) {
	p.puts.Add(1)
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// balance returns outstanding gets (gets - puts); zero means every
// acquired buffer was released.
func (p *bufPool) balance() int64 { return p.gets.Load() - p.puts.Load() }

// frameBufs is the shared wire-buffer pool: v1 frame bodies, v2 chunk
// payloads, and block assembly buffers all draw from it.
var frameBufs bufPool

// frame2 is one decoded v2 frame. Payload is pooled: the receiver owns
// it and must release it via frameBufs.put exactly once.
type frame2 struct {
	Type    uint8
	Flags   uint16
	Stream  uint64
	Payload []byte
}

// last reports whether the frame closes its stream.
func (f *frame2) last() bool { return f.Flags&flagLast != 0 }

// release returns the frame's pooled payload; safe on a zero frame.
func (f *frame2) release() {
	if f.Payload != nil {
		frameBufs.put(f.Payload)
		f.Payload = nil
	}
}

// putHeader fills hdr for a frame with the given payload, computing
// the CRC over the header prefix and payload.
func putHeader(hdr *[headerSize]byte, typ uint8, flags uint16, stream uint64, payload []byte) {
	hdr[0] = frameVersion
	hdr[1] = typ
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint64(hdr[4:12], stream)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, hdr[:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[16:20], crc)
}

// writeFrame2 writes one v2 frame. The payload is written as-is
// (zero-copy); callers keep ownership.
func writeFrame2(w io.Writer, typ uint8, flags uint16, stream uint64, payload []byte) error {
	if len(payload) > MaxChunkPayload {
		return fmt.Errorf("%w: v2 payload %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [headerSize]byte
	putHeader(&hdr, typ, flags, stream, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("svc: write v2 header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("svc: write v2 payload: %w", err)
		}
	}
	return nil
}

// readFrame2 reads one v2 frame. On success the returned frame's
// payload is pooled and owned by the caller (release it once); on any
// error every acquired buffer has already been returned.
func readFrame2(r io.Reader) (frame2, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame2{}, fmt.Errorf("svc: read v2 header: %w", err)
	}
	if hdr[0] != frameVersion {
		return frame2{}, fmt.Errorf("%w: v2 version byte %#x", ErrBadFrame, hdr[0])
	}
	typ := hdr[1]
	if typ == 0 || typ > frameReadHdr {
		return frame2{}, fmt.Errorf("%w: v2 frame type %d", ErrBadFrame, typ)
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxChunkPayload {
		return frame2{}, fmt.Errorf("%w: v2 payload %d bytes", ErrFrameTooLarge, n)
	}
	payload := frameBufs.get(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		frameBufs.put(payload)
		return frame2{}, fmt.Errorf("svc: read v2 payload: %w", err)
	}
	crc := crc32.Update(0, crcTable, hdr[:16])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.BigEndian.Uint32(hdr[16:20]) {
		frameBufs.put(payload)
		return frame2{}, fmt.Errorf("%w: v2 frame CRC mismatch", ErrBadFrame)
	}
	return frame2{
		Type:    typ,
		Flags:   binary.BigEndian.Uint16(hdr[2:4]),
		Stream:  binary.BigEndian.Uint64(hdr[4:12]),
		Payload: payload,
	}, nil
}

// ---- control payload encoding ----
//
// Control payloads use a hand-rolled big-endian binary layout:
// fixed-width integers, uint16-length-prefixed strings. Decoders are
// defensive (every read bounds-checked) because the fuzz targets feed
// them arbitrary bytes.

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = appendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// binReader walks a control payload with sticky bounds checking.
type binReader struct {
	b   []byte
	off int
	bad bool
}

func (r *binReader) u16() uint16 {
	if r.bad || r.off+2 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *binReader) u32() uint32 {
	if r.bad || r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if r.bad || r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *binReader) str() string {
	n := int(r.u16())
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *binReader) byte() byte {
	if r.bad || r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// done reports a clean parse: no bounds violation and no trailing
// bytes.
func (r *binReader) done() bool { return !r.bad && r.off == len(r.b) }

// chainEntry names one downstream pipeline hop.
type chainEntry struct {
	Node cluster.NodeID
	Addr string
}

// openWrite is the pipeline write setup: the block, its total size
// (so receivers can size their assembly buffer once), the caller's
// deadline budget, the sender's endpoint name for the fault hook, and
// the remaining downstream chain.
type openWrite struct {
	Block      dfs.BlockID
	Size       int64
	DeadlineMS int64
	From       string
	Chain      []chainEntry
}

// maxChainLen bounds a decoded pipeline chain; real chains are the
// replication degree (single digits), the bound just keeps hostile
// frames from forcing huge allocations.
const maxChainLen = 256

func encodeOpenWrite(ow openWrite) []byte {
	b := make([]byte, 0, 32+len(ow.From)+len(ow.Chain)*24)
	b = appendUint64(b, uint64(ow.Block))
	b = appendUint64(b, uint64(ow.Size))
	b = appendUint64(b, uint64(ow.DeadlineMS))
	b = appendString(b, ow.From)
	b = appendUint16(b, uint16(len(ow.Chain)))
	for _, ce := range ow.Chain {
		b = appendUint32(b, uint32(ce.Node))
		b = appendString(b, ce.Addr)
	}
	return b
}

func decodeOpenWrite(p []byte) (openWrite, error) {
	r := binReader{b: p}
	var ow openWrite
	ow.Block = dfs.BlockID(r.u64())
	ow.Size = int64(r.u64())
	ow.DeadlineMS = int64(r.u64())
	ow.From = r.str()
	n := int(r.u16())
	if n > maxChainLen {
		return openWrite{}, fmt.Errorf("%w: pipeline chain of %d", ErrBadFrame, n)
	}
	for i := 0; i < n && !r.bad; i++ {
		ce := chainEntry{Node: cluster.NodeID(r.u32())}
		ce.Addr = r.str()
		ow.Chain = append(ow.Chain, ce)
	}
	if !r.done() {
		return openWrite{}, fmt.Errorf("%w: malformed open-write payload", ErrBadFrame)
	}
	if ow.Size < 0 {
		return openWrite{}, fmt.Errorf("%w: negative block size in open-write", ErrBadFrame)
	}
	return ow, nil
}

// openRead is the streaming read setup.
type openRead struct {
	Block      dfs.BlockID
	DeadlineMS int64
	From       string
}

func encodeOpenRead(or openRead) []byte {
	b := make([]byte, 0, 20+len(or.From))
	b = appendUint64(b, uint64(or.Block))
	b = appendUint64(b, uint64(or.DeadlineMS))
	b = appendString(b, or.From)
	return b
}

func decodeOpenRead(p []byte) (openRead, error) {
	r := binReader{b: p}
	var or openRead
	or.Block = dfs.BlockID(r.u64())
	or.DeadlineMS = int64(r.u64())
	or.From = r.str()
	if !r.done() {
		return openRead{}, fmt.Errorf("%w: malformed open-read payload", ErrBadFrame)
	}
	return or, nil
}

// ackEntry is one node's status inside a setup or commit ack. OK means
// the node accepted (setup) or committed (commit); otherwise Code and
// Msg carry the error taxonomy across the wire exactly like the JSON
// envelope's code/error fields, and Transient the peer-side
// dfs.IsTransient classification.
type ackEntry struct {
	Node      cluster.NodeID
	OK        bool
	Transient bool
	Code      string
	Msg       string
}

// failed builds the ack entry for a node that failed with err.
func failedAck(node cluster.NodeID, err error) ackEntry {
	return ackEntry{
		Node:      node,
		Code:      codeFor(err),
		Msg:       err.Error(),
		Transient: dfs.IsTransient(err),
	}
}

// err rehydrates a non-OK entry as a RemoteError, so errors.Is against
// the dfs/svc sentinels and dfs.IsTransient behave exactly as for the
// JSON envelope. nil for OK entries.
func (a ackEntry) err() error {
	if a.OK {
		return nil
	}
	return &RemoteError{
		Code:     a.Code,
		Msg:      a.Msg,
		IsRetry:  a.Transient,
		sentinel: sentinelFor(a.Code),
	}
}

func encodeAcks(entries []ackEntry) []byte {
	n := 2
	for _, e := range entries {
		n += 9 + len(e.Code) + len(e.Msg)
	}
	b := make([]byte, 0, n)
	b = appendUint16(b, uint16(len(entries)))
	for _, e := range entries {
		b = appendUint32(b, uint32(e.Node))
		var flags byte
		if e.OK {
			flags |= 1
		}
		if e.Transient {
			flags |= 2
		}
		b = append(b, flags)
		b = appendString(b, e.Code)
		b = appendString(b, e.Msg)
	}
	return b
}

func decodeAcks(p []byte) ([]ackEntry, error) {
	r := binReader{b: p}
	n := int(r.u16())
	if n > maxChainLen {
		return nil, fmt.Errorf("%w: ack list of %d", ErrBadFrame, n)
	}
	entries := make([]ackEntry, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		var e ackEntry
		e.Node = cluster.NodeID(r.u32())
		flags := r.byte()
		e.OK = flags&1 != 0
		e.Transient = flags&2 != 0
		e.Code = r.str()
		e.Msg = r.str()
		entries = append(entries, e)
	}
	if !r.done() {
		return nil, fmt.Errorf("%w: malformed ack payload", ErrBadFrame)
	}
	return entries, nil
}

// encodeErrorFrame carries a failed read's taxonomy to the reader.
func encodeErrorFrame(err error) []byte {
	b := make([]byte, 0, 8+len(err.Error()))
	var flags byte
	if dfs.IsTransient(err) {
		flags |= 2
	}
	b = append(b, flags)
	b = appendString(b, codeFor(err))
	b = appendString(b, err.Error())
	return b
}

// decodeErrorFrame rehydrates an error frame's payload.
func decodeErrorFrame(p []byte) error {
	r := binReader{b: p}
	flags := r.byte()
	code := r.str()
	msg := r.str()
	if !r.done() {
		return fmt.Errorf("%w: malformed error payload", ErrBadFrame)
	}
	return &RemoteError{
		Code:     code,
		Msg:      msg,
		IsRetry:  flags&2 != 0,
		sentinel: sentinelFor(code),
	}
}

// encodeReadHdr announces a read stream's total byte count.
func encodeReadHdr(size int64) []byte {
	return appendUint64(nil, uint64(size))
}

func decodeReadHdr(p []byte) (int64, error) {
	r := binReader{b: p}
	size := int64(r.u64())
	if !r.done() || size < 0 {
		return 0, fmt.Errorf("%w: malformed read header", ErrBadFrame)
	}
	return size, nil
}

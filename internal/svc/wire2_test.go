package svc

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/stats"
)

// requirePoolBalance asserts that the shared frame-buffer pool returns
// to the balance recorded before the test body ran. Background
// goroutines from neighbouring tests may still be draining frames, so
// the check polls briefly instead of failing on the first read.
func requirePoolBalance(t *testing.T, start int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if frameBufs.balance() == start {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool balance = %d, want %d: a wire buffer leaked", frameBufs.balance(), start)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFrame2RoundTrip(t *testing.T) {
	start := frameBufs.balance()
	payloads := [][]byte{nil, {0x42}, bytes.Repeat([]byte{0xAB}, 1000), payload(DefaultChunkSize)}
	for typ := frameOpenWrite; typ <= frameReadHdr; typ++ {
		for _, flags := range []uint16{0, flagLast} {
			for pi, p := range payloads {
				var buf bytes.Buffer
				sid := uint64(typ)<<32 | uint64(pi)
				if err := writeFrame2(&buf, typ, flags, sid, p); err != nil {
					t.Fatal(err)
				}
				f, err := readFrame2(&buf)
				if err != nil {
					t.Fatalf("type %d flags %d payload %d: %v", typ, flags, pi, err)
				}
				if f.Type != typ || f.Flags != flags || f.Stream != sid {
					t.Fatalf("header roundtrip: %+v", f)
				}
				if !bytes.Equal(f.Payload, p) {
					t.Fatalf("type %d: payload mismatch (%d vs %d bytes)", typ, len(f.Payload), len(p))
				}
				if f.last() != (flags&flagLast != 0) {
					t.Fatalf("last() = %v for flags %d", f.last(), flags)
				}
				f.release()
				f.release() // double release must be a no-op
			}
		}
	}
	requirePoolBalance(t, start)
}

func TestWriteFrame2RejectsOversizePayload(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame2(&buf, frameChunk, 0, 1, make([]byte, MaxChunkPayload+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// encodeFrame2 renders one valid frame to bytes for corruption tests.
func encodeFrame2(t *testing.T, typ uint8, flags uint16, stream uint64, p []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame2(&buf, typ, flags, stream, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFrame2Rejects is the corruption contract: every malformed
// frame is refused with the right sentinel, and no pooled buffer leaks
// on any rejection path.
func TestReadFrame2Rejects(t *testing.T) {
	start := frameBufs.balance()
	valid := encodeFrame2(t, frameChunk, flagLast, 7, []byte("block bytes"))

	corrupt := func(off int, b byte) []byte {
		c := bytes.Clone(valid)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"bad version", corrupt(0, 0x01), ErrBadFrame},
		{"zero type", corrupt(1, 0), ErrBadFrame},
		{"unknown type", corrupt(1, frameReadHdr+1), ErrBadFrame},
		// A flipped-but-valid type must be caught by the CRC, which
		// covers the header prefix, not just the payload.
		{"flipped valid type", corrupt(1, frameOpenRead), ErrBadFrame},
		{"flipped flag", corrupt(2, 0xFF), ErrBadFrame},
		{"flipped stream id", corrupt(4, 0xFF), ErrBadFrame},
		{"payload corruption", corrupt(headerSize+3, 'X'), ErrBadFrame},
		{"crc corruption", corrupt(16, valid[16]^0x80), ErrBadFrame},
		{"oversize payload length", func() []byte {
			c := bytes.Clone(valid)
			binary.BigEndian.PutUint32(c[12:16], MaxChunkPayload+1)
			return c
		}(), ErrFrameTooLarge},
		{"truncated header", valid[:headerSize-3], nil},
		{"truncated payload", valid[:headerSize+4], nil},
		{"empty input", nil, nil},
	}
	for _, tc := range cases {
		f, err := readFrame2(bytes.NewReader(tc.raw))
		if err == nil {
			f.release()
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	requirePoolBalance(t, start)
}

// TestWireBufferPoolBalances is the leak contract for the shared pool:
// v1 frame bodies and v2 payloads must be returned on success and on
// every error path, and oversized buffers must still be counted when
// the pool declines to retain them.
func TestWireBufferPoolBalances(t *testing.T) {
	start := frameBufs.balance()

	// v1 success, garbage, and oversize paths.
	var v1 bytes.Buffer
	if err := writeFrame(&v1, request{ID: 1, Method: "nn.list"}); err != nil {
		t.Fatal(err)
	}
	var req request
	if err := readFrame(&v1, &req); err != nil {
		t.Fatal(err)
	}
	v1.Reset()
	if err := writeFrame(&v1, "not an envelope"); err != nil {
		t.Fatal(err)
	}
	if err := readFrame(&v1, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage: %v", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if err := readFrame(bytes.NewReader(hdr[:]), &req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	// Truncated v1 body: the buffer was acquired, then the read fails.
	binary.BigEndian.PutUint32(hdr[:], 100)
	if err := readFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), &req); err == nil {
		t.Fatal("truncated v1 body accepted")
	}

	// v2 success and error paths.
	raw := encodeFrame2(t, frameChunk, flagLast, 9, []byte("abc"))
	f, err := readFrame2(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	f.release()
	bad := bytes.Clone(raw)
	bad[headerSize] ^= 0xFF
	if _, err := readFrame2(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt v2 frame accepted")
	}
	if _, err := readFrame2(bytes.NewReader(raw[:headerSize+1])); err == nil {
		t.Fatal("truncated v2 payload accepted")
	}

	// A buffer above the retention cap must still balance get/put.
	big := frameBufs.get(maxPooledBuf + 1)
	frameBufs.put(big)

	requirePoolBalance(t, start)
}

func TestOpenWriteCodec(t *testing.T) {
	in := openWrite{
		Block:      42,
		Size:       1 << 20,
		DeadlineMS: 1500,
		From:       "namenode",
		Chain: []chainEntry{
			{Node: 3, Addr: "127.0.0.1:9001"},
			{Node: 7, Addr: "127.0.0.1:9002"},
		},
	}
	p := encodeOpenWrite(in)
	out, err := decodeOpenWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Block != in.Block || out.Size != in.Size || out.DeadlineMS != in.DeadlineMS || out.From != in.From {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	if len(out.Chain) != 2 || out.Chain[0] != in.Chain[0] || out.Chain[1] != in.Chain[1] {
		t.Fatalf("chain mismatch: %+v", out.Chain)
	}

	// Empty chain round-trips too (the tail hop of a pipeline).
	tail, err := decodeOpenWrite(encodeOpenWrite(openWrite{Block: 1, From: "dn2"}))
	if err != nil || len(tail.Chain) != 0 {
		t.Fatalf("tail hop: %+v, %v", tail, err)
	}

	for i := 1; i < len(p); i++ {
		if _, err := decodeOpenWrite(p[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := decodeOpenWrite(append(bytes.Clone(p), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: %v", err)
	}

	neg := encodeOpenWrite(openWrite{Block: 1, Size: -1})
	if _, err := decodeOpenWrite(neg); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative size: %v", err)
	}

	huge := appendUint64(nil, 1)
	huge = appendUint64(huge, 0)
	huge = appendUint64(huge, 0)
	huge = appendString(huge, "x")
	huge = appendUint16(huge, maxChainLen+1)
	if _, err := decodeOpenWrite(huge); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized chain: %v", err)
	}
}

func TestOpenReadCodec(t *testing.T) {
	in := openRead{Block: 99, DeadlineMS: 250, From: "shell"}
	out, err := decodeOpenRead(encodeOpenRead(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	p := encodeOpenRead(in)
	for i := 1; i < len(p); i++ {
		if _, err := decodeOpenRead(p[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestReadHdrCodec(t *testing.T) {
	for _, size := range []int64{0, 1, 1 << 30} {
		got, err := decodeReadHdr(encodeReadHdr(size))
		if err != nil || got != size {
			t.Fatalf("size %d: got %d, %v", size, got, err)
		}
	}
	if _, err := decodeReadHdr(encodeReadHdr(-1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative size: %v", err)
	}
	if _, err := decodeReadHdr([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: %v", err)
	}
}

func TestAckCodec(t *testing.T) {
	in := []ackEntry{
		{Node: 0, OK: true},
		{Node: 5, Transient: true, Code: "node_down", Msg: "dfs: node 5 down"},
		{Node: 9, Code: "checksum", Msg: "dfs: block 3 corrupt"},
	}
	out, err := decodeAcks(encodeAcks(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
	empty, err := decodeAcks(encodeAcks(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty acks: %v, %v", empty, err)
	}

	p := encodeAcks(in)
	for i := 1; i < len(p); i++ {
		if _, err := decodeAcks(p[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := decodeAcks(appendUint16(nil, maxChainLen+1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized ack list: %v", err)
	}
}

// TestV2ErrorTaxonomy is the v2 counterpart of TestErrorsCrossTheWire:
// for EVERY wire code registered in errors.go / wire.go, an error
// wrapping that sentinel must survive both v2 encodings — the ack entry
// of a pipeline commit and the error frame of a failed read — still
// matching errors.Is, keeping its dfs.IsTransient classification, and
// printing the same message.
func TestV2ErrorTaxonomy(t *testing.T) {
	if len(wireCodes) == 0 {
		t.Fatal("no wire codes registered")
	}
	for _, ec := range wireCodes {
		src := fmt.Errorf("v2 taxonomy probe: %w", ec.sentinel)

		// Path 1: pipeline ack entry.
		acks, err := decodeAcks(encodeAcks([]ackEntry{failedAck(3, src)}))
		if err != nil {
			t.Fatalf("%s: %v", ec.code, err)
		}
		got := acks[0].err()
		if got == nil {
			t.Fatalf("%s: ack err() = nil", ec.code)
		}
		if !errors.Is(got, ec.sentinel) {
			t.Errorf("%s: ack error does not match sentinel", ec.code)
		}
		if dfs.IsTransient(got) != dfs.IsTransient(src) {
			t.Errorf("%s: ack transient = %v, want %v", ec.code, dfs.IsTransient(got), dfs.IsTransient(src))
		}
		if got.Error() != src.Error() {
			t.Errorf("%s: ack message %q != %q", ec.code, got.Error(), src.Error())
		}
		if acks[0].Node != 3 {
			t.Errorf("%s: ack node = %d", ec.code, acks[0].Node)
		}

		// Path 2: read error frame.
		got = decodeErrorFrame(encodeErrorFrame(src))
		if !errors.Is(got, ec.sentinel) {
			t.Errorf("%s: error frame does not match sentinel", ec.code)
		}
		if dfs.IsTransient(got) != dfs.IsTransient(src) {
			t.Errorf("%s: error frame transient = %v, want %v", ec.code, dfs.IsTransient(got), dfs.IsTransient(src))
		}
		if got.Error() != src.Error() {
			t.Errorf("%s: error frame message %q != %q", ec.code, got.Error(), src.Error())
		}
	}
}

func TestV2UnknownCodeStillCarriesMessage(t *testing.T) {
	e := ackEntry{Node: 1, Code: "martian", Msg: "boom", Transient: true}
	got := e.err()
	if got == nil || got.Error() != "boom" {
		t.Fatalf("err() = %v, want message boom", got)
	}
	if !dfs.IsTransient(got) {
		t.Fatal("transient flag lost")
	}
	var re *RemoteError
	if !errors.As(got, &re) {
		t.Fatalf("got %T, want *RemoteError", got)
	}
	if errors.Unwrap(re) != nil {
		t.Fatal("unknown code must not unwrap to a sentinel")
	}

	if err := decodeErrorFrame([]byte{0}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short error frame: %v", err)
	}
}

// TestAppendStringTruncates: endpoint names and error messages longer
// than the uint16 length prefix are clipped, never wrapped around.
func TestAppendStringTruncates(t *testing.T) {
	long := strings.Repeat("m", 0x10001)
	b := appendString(nil, long)
	r := binReader{b: b}
	got := r.str()
	if !r.done() || len(got) != 0xffff {
		t.Fatalf("len = %d, done = %v", len(got), r.done())
	}
}

// TestDataPathConfigValidation: the data-path selector accepts the two
// protocols and the empty default, and rejects anything else with the
// config taxonomy.
func TestDataPathConfigValidation(t *testing.T) {
	c, err := cluster.New(make([]cluster.Node, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewNameNodeServer(c, []string{"127.0.0.1:1"}, stats.NewRNG(1), nil, NameNodeConfig{DataPath: "carrier-pigeon"})
	if !errors.Is(err, dfs.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, dp := range []string{"", DataPathBinary, DataPathJSON} {
		nn, err := NewNameNodeServer(c, []string{"127.0.0.1:1"}, stats.NewRNG(1), nil, NameNodeConfig{DataPath: dp})
		if err != nil {
			t.Fatalf("data path %q rejected: %v", dp, err)
		}
		_ = nn.Shutdown(ctx)
	}
}

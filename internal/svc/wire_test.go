package svc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/adaptsim/adapt/internal/dfs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{
		ID:         7,
		From:       "shell",
		Method:     "nn.read",
		DeadlineMS: 1500,
		Params:     json.RawMessage(`{"name":"f"}`),
	}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.From != in.From || out.Method != in.Method || out.DeadlineMS != in.DeadlineMS {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	if string(out.Params) != string(in.Params) {
		t.Fatalf("params %q != %q", out.Params, in.Params)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	buf.Write(hdr[:])
	var out request
	err := readFrame(&buf, &out)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, "not an envelope"); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// TestErrorsCrossTheWire is the error-taxonomy contract: a dfs
// sentinel encoded on one side must, after decode, still satisfy
// errors.Is against the same sentinel and keep its transient
// classification.
func TestErrorsCrossTheWire(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{fmt.Errorf("wrapped: %w", dfs.ErrFileNotFound), false},
		{fmt.Errorf("dfs: node 3 rejected put: %w", dfs.ErrNodeDown), true},
		{fmt.Errorf("dfs: block 9: %w", dfs.ErrChecksum), true},
		{fmt.Errorf("deep: %w", fmt.Errorf("mid: %w", dfs.ErrFileExists)), false},
		{fmt.Errorf("beat: %w", ErrStaleHeartbeat), false},
		{fmt.Errorf("drain: %w", ErrShuttingDown), false},
		{context.DeadlineExceeded, false},
	}
	for _, tc := range cases {
		var resp response
		encodeError(&resp, tc.err)
		got := decodeError(&resp)
		if got == nil {
			t.Fatalf("decodeError(%v) = nil", tc.err)
		}
		// The decoded error must match the deepest registered sentinel.
		target := tc.err
		for errors.Unwrap(target) != nil {
			target = errors.Unwrap(target)
		}
		if !errors.Is(got, target) {
			t.Errorf("decoded %v does not match sentinel %v", got, target)
		}
		if dfs.IsTransient(got) != tc.transient {
			t.Errorf("decoded %v: transient = %v, want %v", got, dfs.IsTransient(got), tc.transient)
		}
		if got.Error() != tc.err.Error() {
			t.Errorf("message %q != %q", got.Error(), tc.err.Error())
		}
	}
}

func TestUnknownWireCodeStillCarriesMessage(t *testing.T) {
	got := decodeError(&response{Code: "martian", Error: "boom", Transient: true})
	if got == nil || got.Error() != "boom" {
		t.Fatalf("decodeError = %v, want message boom", got)
	}
	if !dfs.IsTransient(got) {
		t.Fatal("transient flag lost")
	}
	var re *RemoteError
	if !errors.As(got, &re) {
		t.Fatalf("got %T, want *RemoteError", got)
	}
	if errors.Unwrap(re) != nil {
		t.Fatal("unknown code must not unwrap to a sentinel")
	}
}

func TestDeadlineBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	if got := deadlineBudget(context.Background(), now); got != 0 {
		t.Fatalf("no deadline: budget = %d, want 0", got)
	}
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(2*time.Second))
	defer cancel()
	if got := deadlineBudget(ctx, now); got != 2000 {
		t.Fatalf("budget = %d, want 2000", got)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), now.Add(-time.Second))
	defer cancel2()
	if got := deadlineBudget(expired, now); got != 1 {
		t.Fatalf("expired budget = %d, want 1", got)
	}
}

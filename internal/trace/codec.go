package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The CSV codec reads and writes trace sets in an FTA-like layout:
//
//	# horizon <seconds>
//	host,start,duration
//	host-0,1234.5,60
//	...
//
// One row per interruption event; hosts with no events still appear
// once with empty start/duration so the host population is preserved.

const headerRow = "host,start,duration"

// WriteCSV serializes the set.
func WriteCSV(w io.Writer, s *Set) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# horizon %s\n", strconv.FormatFloat(s.Horizon, 'g', -1, 64)); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if _, err := fmt.Fprintln(bw, headerRow); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	cw := csv.NewWriter(bw)
	for i := range s.Traces {
		tr := &s.Traces[i]
		if len(tr.Events) == 0 {
			if err := cw.Write([]string{tr.Host, "", ""}); err != nil {
				return fmt.Errorf("trace: write host %s: %w", tr.Host, err)
			}
			continue
		}
		for _, e := range tr.Events {
			rec := []string{
				tr.Host,
				strconv.FormatFloat(e.Start, 'g', -1, 64),
				strconv.FormatFloat(e.Duration, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write host %s: %w", tr.Host, err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return bw.Flush()
}

// ReadCSV parses a trace set previously written by WriteCSV (or an
// FTA export converted to the same columns). Host order follows first
// appearance; events are sorted per host.
func ReadCSV(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	// Header comment with the horizon.
	first, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	var horizon float64
	if _, err := fmt.Sscanf(first, "# horizon %g", &horizon); err != nil {
		return nil, fmt.Errorf("trace: malformed horizon header %q: %w", first, err)
	}

	cr := csv.NewReader(br)
	cr.FieldsPerRecord = 3
	byHost := make(map[string]*Trace)
	var order []string
	lineNo := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		lineNo++
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if lineNo == 2 && rec[0] == "host" {
			continue // column header
		}
		host := rec[0]
		tr, ok := byHost[host]
		if !ok {
			tr = &Trace{Host: host, Horizon: horizon}
			byHost[host] = tr
			order = append(order, host)
		}
		if rec[1] == "" && rec[2] == "" {
			continue // host marker with no events
		}
		start, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start %q: %w", lineNo, rec[1], err)
		}
		dur, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad duration %q: %w", lineNo, rec[2], err)
		}
		tr.Events = append(tr.Events, Event{Start: start, Duration: dur})
	}

	set := &Set{Horizon: horizon, Traces: make([]Trace, 0, len(order))}
	for _, h := range order {
		tr := byHost[h]
		sort.SliceStable(tr.Events, func(i, j int) bool {
			return tr.Events[i].Start < tr.Events[j].Start
		})
		set.Traces = append(set.Traces, *tr)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return set, nil
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adaptsim/adapt/internal/stats"
)

func TestCSVRoundTrip(t *testing.T) {
	set, err := Generate(DefaultSETIConfig(10), stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Make sure at least one host with no events is represented.
	set.Traces = append(set.Traces, Trace{Host: "idle", Horizon: set.Horizon})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != set.Horizon {
		t.Fatalf("horizon = %g, want %g", got.Horizon, set.Horizon)
	}
	if got.Len() != set.Len() {
		t.Fatalf("hosts = %d, want %d", got.Len(), set.Len())
	}
	for i := range set.Traces {
		a, b := set.Traces[i], got.Traces[i]
		if a.Host != b.Host {
			t.Fatalf("host %d name %q != %q", i, b.Host, a.Host)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("host %s event count %d != %d", a.Host, len(b.Events), len(a.Events))
		}
		for j := range a.Events {
			if a.Events[j] != b.Events[j] {
				t.Fatalf("host %s event %d: %+v != %+v", a.Host, j, b.Events[j], a.Events[j])
			}
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no horizon", "host,start,duration\n"},
		{"bad start", "# horizon 100\nhost,start,duration\na,xyz,1\n"},
		{"bad duration", "# horizon 100\nhost,start,duration\na,1,xyz\n"},
		{"wrong fields", "# horizon 100\nhost,start,duration\na,1\n"},
		{"beyond horizon", "# horizon 100\nhost,start,duration\na,200,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Fatal("malformed input accepted")
			}
		})
	}
}

func TestWriteCSVInvalidSet(t *testing.T) {
	bad := &Set{Horizon: -1}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, bad); err == nil {
		t.Fatal("invalid set written")
	}
}

func TestReadCSVSortsEvents(t *testing.T) {
	in := "# horizon 100\nhost,start,duration\na,50,1\na,10,2\n"
	set, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ev := set.Traces[0].Events
	if ev[0].Start != 10 || ev[1].Start != 50 {
		t.Fatalf("events not sorted: %+v", ev)
	}
}

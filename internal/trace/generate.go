package trace

import (
	"fmt"
	"math"
	"strconv"

	"github.com/adaptsim/adapt/internal/stats"
)

// SETIMTBIMean, SETIMTBICoV, SETIDurationMean and SETIDurationCoV are
// the SETI@home statistics the paper reports in Table 1. The synthetic
// generator is calibrated so that a large generated population
// reproduces them.
const (
	SETIMTBIMean     = 160290.0 // seconds
	SETIMTBICoV      = 4.376
	SETIDurationMean = 109380.0 // seconds
	SETIDurationCoV  = 7.3869
)

// GeneratorConfig parameterizes the synthetic FTA-style trace
// generator. Heterogeneity across hosts is produced in two layers:
// each host draws its personal mean MTBI and mean duration from
// heavy-tailed population distributions, then generates its events
// from per-host distributions around those means. This two-layer
// structure is what gives volunteer-computing populations their very
// high pooled CoV (Table 1) — most hosts are stable, a minority is
// wildly unstable.
type GeneratorConfig struct {
	// Hosts is the number of hosts to generate.
	Hosts int
	// Horizon is the observation window length in seconds (the paper
	// used 1.5 years of SETI@home data; the default configuration
	// uses the same scale).
	Horizon float64
	// MTBIMean and MTBICoV describe the pooled inter-arrival target.
	MTBIMean, MTBICoV float64
	// DurationMean and DurationCoV describe the pooled duration
	// target.
	DurationMean, DurationCoV float64
	// HostShare is the fraction of pooled variability attributed to
	// cross-host heterogeneity (the rest is within-host). Must be in
	// (0, 1). The default 0.8 reflects that FTA variability is
	// dominated by differences between hosts.
	HostShare float64
	// TimeScale uniformly rescales all times (means stay calibrated
	// to Table 1 when TimeScale == 1). Simulation experiments use a
	// smaller scale to condition on job-sized windows.
	TimeScale float64
}

// DefaultSETIConfig returns the Table 1-calibrated configuration for
// the given number of hosts over a 1.5-year horizon.
func DefaultSETIConfig(hosts int) GeneratorConfig {
	return GeneratorConfig{
		Hosts:        hosts,
		Horizon:      1.5 * 365 * 24 * 3600,
		MTBIMean:     SETIMTBIMean,
		MTBICoV:      SETIMTBICoV,
		DurationMean: SETIDurationMean,
		DurationCoV:  SETIDurationCoV,
		HostShare:    0.8,
		TimeScale:    1,
	}
}

func (c *GeneratorConfig) applyDefaults() {
	if c.HostShare == 0 {
		c.HostShare = 0.8
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
}

func (c *GeneratorConfig) validate() error {
	if c.Hosts <= 0 {
		return fmt.Errorf("trace: host count must be positive, got %d", c.Hosts)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("trace: horizon must be positive, got %g", c.Horizon)
	}
	if c.MTBIMean <= 0 || c.DurationMean <= 0 {
		return fmt.Errorf("trace: means must be positive (mtbi=%g, duration=%g)",
			c.MTBIMean, c.DurationMean)
	}
	if c.MTBICoV < 0 || c.DurationCoV < 0 {
		return fmt.Errorf("trace: CoVs must be non-negative (mtbi=%g, duration=%g)",
			c.MTBICoV, c.DurationCoV)
	}
	if c.HostShare <= 0 || c.HostShare >= 1 {
		return fmt.Errorf("trace: host share must be in (0,1), got %g", c.HostShare)
	}
	if c.TimeScale <= 0 {
		return fmt.Errorf("trace: time scale must be positive, got %g", c.TimeScale)
	}
	return nil
}

// splitCoV splits a pooled CoV target into a cross-host component and
// a within-host component such that, to first order, the pooled
// variance of a two-layer lognormal hierarchy matches the target.
//
// For X = M·W with independent lognormals M (host mean, mean 1) and W
// (within-host factor), CoV²(X) = (1+CoV²M)(1+CoV²W) − 1. We allocate
// `share` of log-variance to the host layer.
func splitCoV(cov, share float64) (hostCoV, withinCoV float64) {
	if cov == 0 {
		return 0, 0
	}
	// total log-variance for a lognormal with this CoV
	// sigma^2 = ln(1+cov^2)
	total := logVar(cov)
	h := total * share
	w := total - h
	return covFromLogVar(h), covFromLogVar(w)
}

func logVar(cov float64) float64 { return math.Log1p(cov * cov) }

// covFromLogVar inverts logVar.
func covFromLogVar(v float64) float64 { return math.Sqrt(math.Expm1(v)) }

// Generate produces a synthetic FTA-style trace set. Determinism: the
// same config and seed always produce the same set.
func Generate(cfg GeneratorConfig, g *stats.RNG) (*Set, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	hostMTBICoV, withinMTBICoV := splitCoV(cfg.MTBICoV, cfg.HostShare)
	hostDurCoV, withinDurCoV := splitCoV(cfg.DurationCoV, cfg.HostShare)

	// Population distribution of per-host MTBI multipliers. Pooled
	// (per-event) statistics are length-biased: a host with mean gap m
	// contributes ~Horizon/m gaps, so the pooled mean gap is the
	// harmonic mean of host means. Choosing the multiplier f as
	// LogNormal(mu=sigma^2/2, sigma) gives E[1/f] = 1, which makes the
	// pooled mean equal to cfg.MTBIMean exactly while keeping the
	// pooled CoV at (1+CoV_h^2)(1+CoV_w^2)-1 as split above.
	sigmaH := math.Sqrt(math.Log1p(hostMTBICoV * hostMTBICoV))
	hostMTBI, err := stats.NewLogNormal(sigmaH*sigmaH/2, sigmaH)
	if err != nil {
		return nil, fmt.Errorf("trace: host MTBI layer: %w", err)
	}
	// Duration multipliers are sampled independently of the host's
	// MTBI, so the event-weighted pooled duration mean is unbiased and
	// a mean-1 multiplier suffices.
	hostDur, err := stats.LogNormalFromMeanCoV(1, hostDurCoV)
	if err != nil {
		return nil, fmt.Errorf("trace: host duration layer: %w", err)
	}

	set := &Set{Horizon: cfg.Horizon * cfg.TimeScale}
	set.Traces = make([]Trace, 0, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hg := g.Split()
		meanMTBI := cfg.MTBIMean * hostMTBI.Sample(hg) * cfg.TimeScale
		meanDur := cfg.DurationMean * hostDur.Sample(hg) * cfg.TimeScale

		interarrival, err := stats.LogNormalFromMeanCoV(meanMTBI, withinMTBICoV)
		if err != nil {
			return nil, fmt.Errorf("trace: host %d interarrival: %w", i, err)
		}
		duration, err := stats.LogNormalFromMeanCoV(meanDur, withinDurCoV)
		if err != nil {
			return nil, fmt.Errorf("trace: host %d duration: %w", i, err)
		}

		tr := Trace{Host: "host-" + strconv.Itoa(i), Horizon: set.Horizon}
		t := interarrival.Sample(hg)
		for t < set.Horizon {
			tr.Events = append(tr.Events, Event{Start: t, Duration: duration.Sample(hg)})
			t += interarrival.Sample(hg)
		}
		set.Traces = append(set.Traces, tr)
	}
	return set, nil
}

// GenerateFromAvailability produces traces by sampling the analytic
// model directly: exponential inter-arrivals with each host's λ and
// recovery times from the supplied service distribution family. This
// is the workload used to validate the simulator against the model.
type HostSpec struct {
	Host    string
	MTBI    float64            // mean time between interruptions (s); <=0 means dedicated
	Service stats.Distribution // recovery time distribution; nil means instantaneous
}

// GenerateFromSpecs builds a trace set with exponential inter-arrivals
// per host over the horizon.
func GenerateFromSpecs(specs []HostSpec, horizon float64, g *stats.RNG) (*Set, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: %g", ErrBadHorizon, horizon)
	}
	set := &Set{Horizon: horizon}
	set.Traces = make([]Trace, 0, len(specs))
	for i, spec := range specs {
		hg := g.Split()
		name := spec.Host
		if name == "" {
			name = "host-" + strconv.Itoa(i)
		}
		tr := Trace{Host: name, Horizon: horizon}
		if spec.MTBI > 0 {
			lambda := 1 / spec.MTBI
			t := hg.ExpFloat64() / lambda
			for t < horizon {
				var d float64
				if spec.Service != nil {
					d = spec.Service.Sample(hg)
				}
				tr.Events = append(tr.Events, Event{Start: t, Duration: d})
				t += hg.ExpFloat64() / lambda
			}
		}
		set.Traces = append(set.Traces, tr)
	}
	return set, nil
}

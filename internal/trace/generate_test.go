package trace

import (
	"math"
	"testing"

	"github.com/adaptsim/adapt/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultSETIConfig(16)
	a, err := Generate(cfg, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Traces {
		ea, eb := a.Traces[i].Events, b.Traces[i].Events
		if len(ea) != len(eb) {
			t.Fatalf("host %d event counts differ", i)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("host %d event %d differs", i, j)
			}
		}
	}
}

func TestGenerateValid(t *testing.T) {
	set, err := Generate(DefaultSETIConfig(64), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("generated set invalid: %v", err)
	}
	if set.Len() != 64 {
		t.Fatalf("hosts = %d", set.Len())
	}
}

// The headline calibration test: a generated population must
// approximately reproduce the paper's Table 1 statistics. The pooled
// CoV of a finite sample of a very heavy-tailed distribution is noisy,
// so tolerances are loose but directional: mean within 25%, CoV
// clearly in the heavy-tailed regime (> 2).
func TestGenerateTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test needs a large population")
	}
	set, err := Generate(DefaultSETIConfig(4000), stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(set)
	if st.Interruptions < 1000 {
		t.Fatalf("too few interruptions generated: %d", st.Interruptions)
	}
	if m := st.MTBI.Mean(); math.Abs(m-SETIMTBIMean)/SETIMTBIMean > 0.25 {
		t.Errorf("MTBI mean = %g, want within 25%% of %g", m, SETIMTBIMean)
	}
	if m := st.Duration.Mean(); math.Abs(m-SETIDurationMean)/SETIDurationMean > 0.25 {
		t.Errorf("duration mean = %g, want within 25%% of %g", m, SETIDurationMean)
	}
	if c := st.MTBI.CoV(); c < 2 {
		t.Errorf("MTBI CoV = %g, want heavy-tailed (> 2)", c)
	}
	if c := st.Duration.CoV(); c < 2 {
		t.Errorf("duration CoV = %g, want heavy-tailed (> 2)", c)
	}
}

func TestGenerateHeterogeneity(t *testing.T) {
	// Per-host estimated availability must differ substantially
	// across hosts — this heterogeneity is the premise of the paper.
	set, err := Generate(DefaultSETIConfig(300), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var lambdas stats.Summary
	for i := range set.Traces {
		a := set.Traces[i].EstimateAvailability()
		if !a.Dedicated() {
			lambdas.Add(a.Lambda)
		}
	}
	if lambdas.Count() < 100 {
		t.Fatalf("too few interrupted hosts: %d", lambdas.Count())
	}
	if cov := lambdas.CoV(); cov < 0.5 {
		t.Errorf("lambda CoV across hosts = %g, want > 0.5", cov)
	}
}

func TestGenerateTimeScale(t *testing.T) {
	cfg := DefaultSETIConfig(50)
	cfg.TimeScale = 0.01
	set, err := Generate(cfg, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := set.Horizon, cfg.Horizon*0.01; math.Abs(got-want) > 1e-6 {
		t.Fatalf("horizon = %g, want %g", got, want)
	}
	// Event rate per (scaled) second should be ~unchanged: the mean
	// count per host is horizon/mtbi in both scalings.
	st := ComputeStats(set)
	if st.Interruptions == 0 {
		t.Fatal("no interruptions at scaled time")
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	g := stats.NewRNG(1)
	bad := []GeneratorConfig{
		{Hosts: 0, Horizon: 10, MTBIMean: 1, DurationMean: 1},
		{Hosts: 1, Horizon: 0, MTBIMean: 1, DurationMean: 1},
		{Hosts: 1, Horizon: 10, MTBIMean: 0, DurationMean: 1},
		{Hosts: 1, Horizon: 10, MTBIMean: 1, DurationMean: -1},
		{Hosts: 1, Horizon: 10, MTBIMean: 1, DurationMean: 1, MTBICoV: -1},
		{Hosts: 1, Horizon: 10, MTBIMean: 1, DurationMean: 1, HostShare: 1.5},
		{Hosts: 1, Horizon: 10, MTBIMean: 1, DurationMean: 1, TimeScale: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, g); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateFromSpecs(t *testing.T) {
	svc, err := stats.ExponentialFromMean(4)
	if err != nil {
		t.Fatal(err)
	}
	specs := []HostSpec{
		{Host: "reliable", MTBI: 0},
		{Host: "flaky", MTBI: 10, Service: svc},
		{MTBI: 20, Service: svc}, // unnamed
	}
	set, err := GenerateFromSpecs(specs, 10000, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(set.Traces[0].Events) != 0 {
		t.Fatal("dedicated host has events")
	}
	// flaky host: ~1000 interruptions expected over 10000 s.
	n := len(set.Traces[1].Events)
	if n < 800 || n > 1200 {
		t.Fatalf("flaky host interruption count = %d, want ~1000", n)
	}
	est := set.Traces[1].EstimateAvailability()
	if math.Abs(est.Mu-4)/4 > 0.15 {
		t.Fatalf("estimated mu = %g, want ~4", est.Mu)
	}
	if set.Traces[2].Host != "host-2" {
		t.Fatalf("default host name = %q", set.Traces[2].Host)
	}
}

func TestGenerateFromSpecsBadHorizon(t *testing.T) {
	if _, err := GenerateFromSpecs(nil, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestSplitCoV(t *testing.T) {
	h, w := splitCoV(4.376, 0.8)
	// Recombining: (1+h^2)(1+w^2)-1 = cov^2
	recombined := math.Sqrt((1+h*h)*(1+w*w) - 1)
	if math.Abs(recombined-4.376) > 1e-9 {
		t.Fatalf("recombined CoV = %g, want 4.376", recombined)
	}
	if h0, w0 := splitCoV(0, 0.8); h0 != 0 || w0 != 0 {
		t.Fatal("zero CoV should split to zeros")
	}
}

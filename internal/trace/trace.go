// Package trace models host interruption traces: sequences of
// (start, duration) unavailability events per host, in the style of
// the Failure Trace Archive (FTA) data the ADAPT paper uses for its
// large-scale simulations.
//
// The package provides
//
//   - the event/trace data model with invariant checks,
//   - per-host (λ, μ) estimation — the quantities the NameNode's
//     heartbeat collector feeds the performance predictor,
//   - population statistics reproducing the paper's Table 1
//     (mean / stddev / CoV of MTBI and interruption duration),
//   - a synthetic SETI@home-like generator calibrated to Table 1
//     (the substitution for the proprietary FTA download), and
//   - an FTA-like CSV codec so real traces can be dropped in.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/adaptsim/adapt/internal/model"
	"github.com/adaptsim/adapt/internal/stats"
)

// Event is one interruption: the host becomes unavailable at Start and
// recovers after Duration seconds.
type Event struct {
	Start    float64 // seconds since trace origin
	Duration float64 // seconds of downtime
}

// End returns the recovery instant.
func (e Event) End() float64 { return e.Start + e.Duration }

// Trace is the interruption history of a single host over the
// observation window [0, Horizon). Events are kept sorted by start
// time and may overlap only through queueing semantics applied by
// consumers (the simulator serializes overlapping recoveries FCFS).
type Trace struct {
	Host    string
	Horizon float64
	Events  []Event
}

// Validation errors.
var (
	ErrUnsorted     = errors.New("trace: events not sorted by start time")
	ErrBadEvent     = errors.New("trace: event has negative start or duration")
	ErrBadHorizon   = errors.New("trace: horizon must be positive")
	ErrOutOfHorizon = errors.New("trace: event starts beyond horizon")
)

// Validate checks the trace invariants.
func (t *Trace) Validate() error {
	if t.Horizon <= 0 || math.IsNaN(t.Horizon) {
		return fmt.Errorf("%w: %g", ErrBadHorizon, t.Horizon)
	}
	prev := math.Inf(-1)
	for i, e := range t.Events {
		if e.Start < 0 || e.Duration < 0 || math.IsNaN(e.Start) || math.IsNaN(e.Duration) {
			return fmt.Errorf("%w: event %d = %+v", ErrBadEvent, i, e)
		}
		if e.Start < prev {
			return fmt.Errorf("%w: event %d starts at %g after %g", ErrUnsorted, i, e.Start, prev)
		}
		if e.Start >= t.Horizon {
			return fmt.Errorf("%w: event %d starts at %g, horizon %g", ErrOutOfHorizon, i, e.Start, t.Horizon)
		}
		prev = e.Start
	}
	return nil
}

// Sort orders events by start time (stable).
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return t.Events[i].Start < t.Events[j].Start
	})
}

// InterruptionCount returns the number of recorded interruptions.
func (t *Trace) InterruptionCount() int { return len(t.Events) }

// MTBIs returns the observed inter-arrival gaps between consecutive
// interruption starts. With fewer than two events it returns nil.
func (t *Trace) MTBIs() []float64 {
	if len(t.Events) < 2 {
		return nil
	}
	out := make([]float64, 0, len(t.Events)-1)
	for i := 1; i < len(t.Events); i++ {
		out = append(out, t.Events[i].Start-t.Events[i-1].Start)
	}
	return out
}

// Durations returns the interruption durations.
func (t *Trace) Durations() []float64 {
	out := make([]float64, len(t.Events))
	for i, e := range t.Events {
		out[i] = e.Duration
	}
	return out
}

// EstimateAvailability derives the (λ, μ) parameters the ADAPT
// performance predictor consumes: λ as interruptions per second of
// observation and μ as the mean interruption duration. A trace with no
// events estimates a dedicated host.
func (t *Trace) EstimateAvailability() model.Availability {
	if len(t.Events) == 0 || t.Horizon <= 0 {
		return model.Availability{}
	}
	lambda := float64(len(t.Events)) / t.Horizon
	mu := stats.Mean(t.Durations())
	return model.Availability{Lambda: lambda, Mu: mu}
}

// DowntimeFraction returns the fraction of the horizon the host was
// unavailable, merging overlapping events (an event arriving during
// another's recovery extends the outage FCFS).
func (t *Trace) DowntimeFraction() float64 {
	if t.Horizon <= 0 {
		return 0
	}
	var down float64
	var until float64 // current outage extends to here (FCFS queueing)
	for _, e := range t.Events {
		var s, en float64
		if e.Start < until {
			s = until
			en = until + e.Duration
		} else {
			s = e.Start
			en = e.Start + e.Duration
		}
		until = en
		if s >= t.Horizon {
			break
		}
		if en > t.Horizon {
			en = t.Horizon
		}
		down += en - s
	}
	return down / t.Horizon
}

// Window extracts the sub-trace intersecting [from, from+length),
// re-based so the window start is time zero. Events that begin before
// the window but whose downtime extends into it are clipped to start
// at zero. This implements the paper's trace-replay setup where a
// job-sized window is sampled from a long failure trace.
func (t *Trace) Window(from, length float64) Trace {
	out := Trace{Host: t.Host, Horizon: length}
	to := from + length
	for _, e := range t.Events {
		if e.End() <= from || e.Start >= to {
			continue
		}
		start := e.Start - from
		dur := e.Duration
		if start < 0 {
			dur += start // clip leading part
			start = 0
		}
		out.Events = append(out.Events, Event{Start: start, Duration: dur})
	}
	return out
}

// DownAt reports whether the host is inside an outage at time x,
// applying FCFS extension of overlapping events.
func (t *Trace) DownAt(x float64) bool {
	var until float64
	for _, e := range t.Events {
		if e.Start > x && e.Start > until {
			return false
		}
		if e.Start < until {
			until += e.Duration
		} else {
			until = e.Start + e.Duration
		}
		if e.Start <= x && x < until {
			return true
		}
	}
	return false
}

// Set is a collection of per-host traces sharing one horizon.
type Set struct {
	Horizon float64
	Traces  []Trace
}

// Validate checks every member trace and the shared horizon.
func (s *Set) Validate() error {
	if s.Horizon <= 0 {
		return fmt.Errorf("%w: %g", ErrBadHorizon, s.Horizon)
	}
	for i := range s.Traces {
		if s.Traces[i].Horizon != s.Horizon {
			return fmt.Errorf("trace %d: horizon %g differs from set horizon %g",
				i, s.Traces[i].Horizon, s.Horizon)
		}
		if err := s.Traces[i].Validate(); err != nil {
			return fmt.Errorf("trace %d (%s): %w", i, s.Traces[i].Host, err)
		}
	}
	return nil
}

// Len returns the number of hosts.
func (s *Set) Len() int { return len(s.Traces) }

// Stats aggregates Table 1-style statistics over a trace set.
type Stats struct {
	Hosts         int
	Interruptions int64
	MTBI          stats.Summary // inter-arrival gaps pooled over hosts
	Duration      stats.Summary // interruption durations pooled over hosts
}

// ComputeStats pools MTBI gaps and durations across all hosts, the way
// the paper's Table 1 summarizes the SETI@home data.
func ComputeStats(s *Set) Stats {
	out := Stats{Hosts: s.Len()}
	for i := range s.Traces {
		tr := &s.Traces[i]
		out.Interruptions += int64(tr.InterruptionCount())
		for _, g := range tr.MTBIs() {
			out.MTBI.Add(g)
		}
		for _, d := range tr.Durations() {
			out.Duration.Add(d)
		}
	}
	return out
}

// Table1Row holds one row of the paper's Table 1.
type Table1Row struct {
	Name   string
	Mean   float64
	StdDev float64
	CoV    float64
}

// Table1 renders the statistics in the paper's Table 1 layout.
func (st Stats) Table1() []Table1Row {
	return []Table1Row{
		{Name: "MTBI (seconds)", Mean: st.MTBI.Mean(), StdDev: st.MTBI.StdDev(), CoV: st.MTBI.CoV()},
		{Name: "Interruption Duration (seconds)", Mean: st.Duration.Mean(), StdDev: st.Duration.StdDev(), CoV: st.Duration.CoV()},
	}
}

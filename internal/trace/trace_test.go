package trace

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/adaptsim/adapt/internal/stats"
)

func TestTraceValidate(t *testing.T) {
	ok := Trace{Host: "a", Horizon: 100, Events: []Event{{Start: 1, Duration: 2}, {Start: 10, Duration: 0}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		tr   Trace
		want error
	}{
		{"bad horizon", Trace{Horizon: 0}, ErrBadHorizon},
		{"negative start", Trace{Horizon: 10, Events: []Event{{Start: -1}}}, ErrBadEvent},
		{"negative duration", Trace{Horizon: 10, Events: []Event{{Start: 1, Duration: -2}}}, ErrBadEvent},
		{"unsorted", Trace{Horizon: 10, Events: []Event{{Start: 5}, {Start: 1}}}, ErrUnsorted},
		{"beyond horizon", Trace{Horizon: 10, Events: []Event{{Start: 11}}}, ErrOutOfHorizon},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.tr.Validate(); !errors.Is(err, c.want) {
				t.Fatalf("error = %v, want %v", err, c.want)
			}
		})
	}
}

func TestTraceSort(t *testing.T) {
	tr := Trace{Horizon: 100, Events: []Event{{Start: 9}, {Start: 3}, {Start: 7}}}
	tr.Sort()
	if tr.Events[0].Start != 3 || tr.Events[1].Start != 7 || tr.Events[2].Start != 9 {
		t.Fatalf("sort failed: %+v", tr.Events)
	}
}

func TestMTBIsAndDurations(t *testing.T) {
	tr := Trace{Horizon: 100, Events: []Event{
		{Start: 10, Duration: 1}, {Start: 25, Duration: 2}, {Start: 60, Duration: 3},
	}}
	gaps := tr.MTBIs()
	if len(gaps) != 2 || gaps[0] != 15 || gaps[1] != 35 {
		t.Fatalf("MTBIs = %v", gaps)
	}
	durs := tr.Durations()
	if len(durs) != 3 || durs[2] != 3 {
		t.Fatalf("Durations = %v", durs)
	}
	empty := Trace{Horizon: 10}
	if empty.MTBIs() != nil {
		t.Fatal("MTBIs of empty trace should be nil")
	}
}

func TestEstimateAvailability(t *testing.T) {
	tr := Trace{Horizon: 1000, Events: []Event{
		{Start: 100, Duration: 4}, {Start: 300, Duration: 8}, {Start: 500, Duration: 6},
		{Start: 700, Duration: 2}, {Start: 900, Duration: 5},
	}}
	a := tr.EstimateAvailability()
	if got, want := a.Lambda, 5.0/1000.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("lambda = %g, want %g", got, want)
	}
	if got, want := a.Mu, 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mu = %g, want %g", got, want)
	}
	if !(&Trace{Horizon: 100}).EstimateAvailability().Dedicated() {
		t.Fatal("empty trace should estimate dedicated")
	}
}

func TestDowntimeFraction(t *testing.T) {
	tr := Trace{Horizon: 100, Events: []Event{
		{Start: 10, Duration: 10}, // down 10-20
		{Start: 50, Duration: 5},  // down 50-55
	}}
	if got := tr.DowntimeFraction(); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("fraction = %g, want 0.15", got)
	}
}

func TestDowntimeFractionFCFSOverlap(t *testing.T) {
	// Second event arrives during the first outage: its service
	// queues, extending the outage to 10+10+10 = 30.
	tr := Trace{Horizon: 100, Events: []Event{
		{Start: 10, Duration: 10},
		{Start: 15, Duration: 10},
	}}
	if got := tr.DowntimeFraction(); math.Abs(got-0.20) > 1e-12 {
		t.Fatalf("fraction = %g, want 0.20", got)
	}
}

func TestDowntimeFractionClampsAtHorizon(t *testing.T) {
	tr := Trace{Horizon: 100, Events: []Event{{Start: 90, Duration: 1000}}}
	if got := tr.DowntimeFraction(); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("fraction = %g, want 0.10", got)
	}
}

func TestDownAt(t *testing.T) {
	tr := Trace{Horizon: 100, Events: []Event{
		{Start: 10, Duration: 10},
		{Start: 15, Duration: 10}, // queues: outage is [10, 30)
		{Start: 50, Duration: 5},
	}}
	cases := []struct {
		x    float64
		want bool
	}{
		{5, false}, {10, true}, {25, true}, {29.9, true}, {30, false},
		{49, false}, {52, true}, {55, false},
	}
	for _, c := range cases {
		if got := tr.DownAt(c.x); got != c.want {
			t.Errorf("DownAt(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestWindow(t *testing.T) {
	tr := Trace{Host: "h", Horizon: 1000, Events: []Event{
		{Start: 50, Duration: 30},  // overlaps window start
		{Start: 200, Duration: 10}, // inside
		{Start: 400, Duration: 5},  // past window
	}}
	w := tr.Window(60, 300)
	if w.Horizon != 300 {
		t.Fatalf("horizon = %g", w.Horizon)
	}
	if len(w.Events) != 2 {
		t.Fatalf("events = %+v", w.Events)
	}
	// First event clipped: originally [50,80) -> [0,20) in window time.
	if w.Events[0].Start != 0 || math.Abs(w.Events[0].Duration-20) > 1e-12 {
		t.Fatalf("clipped event = %+v", w.Events[0])
	}
	if w.Events[1].Start != 140 || w.Events[1].Duration != 10 {
		t.Fatalf("inside event = %+v", w.Events[1])
	}
}

func TestWindowProperty(t *testing.T) {
	// Every windowed trace must validate and contain only events that
	// intersect the window.
	g := stats.NewRNG(5)
	cfg := DefaultSETIConfig(20)
	set, err := Generate(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(f8, l8 uint8) bool {
		from := float64(f8) / 255 * set.Horizon * 0.9
		length := 1 + float64(l8)/255*set.Horizon*0.1
		for i := range set.Traces {
			w := set.Traces[i].Window(from, length)
			if err := w.Validate(); err != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetValidate(t *testing.T) {
	s := &Set{Horizon: 100, Traces: []Trace{
		{Host: "a", Horizon: 100},
		{Host: "b", Horizon: 50},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("horizon mismatch accepted")
	}
	s.Traces[1].Horizon = 100
	if err := s.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	s := &Set{Horizon: 1000, Traces: []Trace{
		{Host: "a", Horizon: 1000, Events: []Event{
			{Start: 0, Duration: 2}, {Start: 10, Duration: 4},
		}},
		{Host: "b", Horizon: 1000, Events: []Event{
			{Start: 5, Duration: 6},
		}},
	}}
	st := ComputeStats(s)
	if st.Hosts != 2 || st.Interruptions != 3 {
		t.Fatalf("hosts=%d interruptions=%d", st.Hosts, st.Interruptions)
	}
	if st.MTBI.Count() != 1 || st.MTBI.Mean() != 10 {
		t.Fatalf("MTBI summary: %v", &st.MTBI)
	}
	if st.Duration.Count() != 3 || st.Duration.Mean() != 4 {
		t.Fatalf("duration summary: %v", &st.Duration)
	}
	rows := st.Table1()
	if len(rows) != 2 || rows[0].Mean != 10 || rows[1].Mean != 4 {
		t.Fatalf("table1 rows: %+v", rows)
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Sharded layout. A NameNode running with P > 1 namespace shards
// gives each shard its own independent Log so shards fsync, snapshot,
// and recover without coordinating. On disk that is
//
//	<root>/SHARDS            — manifest: the decimal shard count
//	<root>/shard-000/        — shard 0's segments and snapshots
//	<root>/shard-001/        — shard 1's …
//
// P == 1 keeps the legacy flat layout (segments directly under root,
// no manifest), so existing single-shard WAL directories open
// unchanged.
//
// The manifest pins the shard count for the life of the directory:
// the shard a file's records live in is a function of hash(name) % P,
// so reopening with a different P would scatter replay. Resharding is
// a migration, not a reopen, and ShardDirs refuses it.

// manifestName is the shard-count manifest file inside a sharded WAL
// root.
const manifestName = "SHARDS"

// ErrShardMismatch marks an attempt to open a WAL root with a shard
// count different from the one it was created with.
var ErrShardMismatch = errors.New("wal: shard count mismatch (resharding unsupported)")

// ShardDirs resolves (creating if needed) the per-shard log
// directories under root for a NameNode with the given shard count,
// returning one directory per shard in shard order. It validates the
// layout:
//
//   - shards == 1 returns {root} (legacy flat layout). If root carries
//     a SHARDS manifest from a previous multi-shard run, it refuses.
//   - shards > 1 creates root/shard-NNN directories and a SHARDS
//     manifest recording the count. If a manifest already exists with
//     a different count, or root already holds a flat single-shard
//     log, it refuses — resharding an existing namespace is not
//     supported.
func ShardDirs(root string, shards int) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("wal: shard count %d out of range", shards)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create root: %w", err)
	}
	recorded, hasManifest, err := readManifest(root)
	if err != nil {
		return nil, err
	}
	if shards == 1 {
		if hasManifest {
			return nil, fmt.Errorf("%w: directory %s was created with %d shards, opened with 1", ErrShardMismatch, root, recorded)
		}
		return []string{root}, nil
	}
	if hasManifest {
		if recorded != shards {
			return nil, fmt.Errorf("%w: directory %s was created with %d shards, opened with %d", ErrShardMismatch, root, recorded, shards)
		}
	} else {
		flat, err := hasFlatLog(root)
		if err != nil {
			return nil, err
		}
		if flat {
			return nil, fmt.Errorf("%w: directory %s holds a single-shard log, opened with %d shards", ErrShardMismatch, root, shards)
		}
		if err := writeManifest(root, shards); err != nil {
			return nil, err
		}
	}
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("shard-%03d", i))
		if err := os.MkdirAll(dirs[i], 0o755); err != nil {
			return nil, fmt.Errorf("wal: create shard dir: %w", err)
		}
	}
	return dirs, nil
}

// readManifest returns the shard count recorded in root's manifest,
// if one exists.
func readManifest(root string) (count int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(root, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("wal: read shard manifest: %w", err)
	}
	count, err = strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || count < 2 {
		return 0, false, fmt.Errorf("%w: shard manifest %q unreadable", ErrCorrupt, strings.TrimSpace(string(data)))
	}
	return count, true, nil
}

// writeManifest durably records the shard count: temp file, fsync,
// rename, fsync directory — the same discipline snapshots use, so a
// crash leaves either no manifest or a complete one.
func writeManifest(root string, shards int) error {
	tmp := filepath.Join(root, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: write shard manifest: %w", err)
	}
	if _, err := f.WriteString(strconv.Itoa(shards) + "\n"); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write shard manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(root, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write shard manifest: %w", err)
	}
	return syncDir(root)
}

// hasFlatLog reports whether root already contains flat single-shard
// log files (segments or snapshots directly under root).
func hasFlatLog(root string) (bool, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return false, fmt.Errorf("wal: scan root: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".log") {
			return true, nil
		}
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			return true, nil
		}
	}
	return false, nil
}

package wal

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestShardDirsSingleIsFlat(t *testing.T) {
	root := t.TempDir()
	dirs, err := ShardDirs(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != root {
		t.Fatalf("single-shard dirs = %v, want [%s]", dirs, root)
	}
}

func TestShardDirsCreatesAndReopens(t *testing.T) {
	root := t.TempDir()
	dirs, err := ShardDirs(root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 4 {
		t.Fatalf("got %d dirs, want 4", len(dirs))
	}
	if want := filepath.Join(root, "shard-002"); dirs[2] != want {
		t.Fatalf("dirs[2] = %s, want %s", dirs[2], want)
	}
	// Each shard dir is an independent, openable log.
	for _, d := range dirs {
		l, err := Open(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Reopening with the same count is fine.
	again, err := ShardDirs(root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 4 || again[0] != dirs[0] {
		t.Fatalf("reopen dirs = %v, want %v", again, dirs)
	}
}

func TestShardDirsRefusesReshard(t *testing.T) {
	root := t.TempDir()
	if _, err := ShardDirs(root, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ShardDirs(root, 8); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("4->8 reshard err = %v, want ErrShardMismatch", err)
	}
	if _, err := ShardDirs(root, 1); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("4->1 reshard err = %v, want ErrShardMismatch", err)
	}
}

func TestShardDirsRefusesShardingFlatLog(t *testing.T) {
	root := t.TempDir()
	l, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ShardDirs(root, 4); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("flat->4 err = %v, want ErrShardMismatch", err)
	}
	// Still opens fine as a single shard.
	if _, err := ShardDirs(root, 1); err != nil {
		t.Fatal(err)
	}
}

func TestShardDirsRejectsBadCount(t *testing.T) {
	if _, err := ShardDirs(t.TempDir(), 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
}

// Package wal is the write-ahead log backing the durable NameNode:
// an append-only, CRC32-framed, fsync-on-commit record log with
// periodic snapshots and log truncation.
//
// Layout. A log directory holds segment files `seg-<NNN>.log` and
// snapshot files `snap-<NNN>.snap`, where NNN is a zero-padded
// sequence number. A segment named seg-N holds records N+1, N+2, …
// in order; a snapshot named snap-N captures the application state
// after applying records 1..N. Records and snapshots share one frame
// format: a 4-byte big-endian payload length, a 4-byte big-endian
// CRC32 (IEEE) of the payload, then the payload.
//
// Durability contract. Append writes the frame and fsyncs before
// returning, so a record whose Append returned nil survives any
// crash. SaveSnapshot writes the snapshot to a temp file, fsyncs it,
// renames it into place, and fsyncs the directory, then rotates to a
// fresh segment and prunes files the snapshot covers — a crash at any
// point leaves either the old or the new snapshot durable, never a
// torn one.
//
// Torn tails. A crash mid-Append can leave a partial frame at the end
// of the newest segment. Because appends are sequential and fsync'd,
// a torn frame can only be the last thing written; Open truncates the
// tail at the first invalid frame of the final segment and replays
// everything before it. The dropped record was never acknowledged. An
// invalid frame in any non-final segment is real corruption and Open
// fails with ErrCorrupt rather than silently dropping acknowledged
// records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrClosed marks appends or snapshots on a log that was closed or
	// abandoned (Crash), or that failed a durability write (a log that
	// cannot promise durability refuses further work).
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt marks a log directory whose non-tail contents fail
	// validation: a bad frame before the final segment's tail, a
	// missing segment in the chain, or a gap between the newest
	// snapshot and the oldest remaining segment.
	ErrCorrupt = errors.New("wal: log corrupt")
)

// MaxRecordSize bounds a single record or snapshot payload. Frames
// declaring more are treated as torn (tail) or corrupt (interior).
const MaxRecordSize = 64 << 20

const frameHeader = 8 // 4-byte length + 4-byte CRC32

// AppendFaults lets a fault injector (chaos.CrashFaults) interpose on
// the physical append. BeforeAppend sees the encoded frame and
// returns how many bytes of it to actually write; a non-nil error
// fails the append after writing that prefix and permanently breaks
// the log handle, simulating a crash mid-write with a torn record on
// disk.
type AppendFaults interface {
	BeforeAppend(frame []byte) (int, error)
}

type entry struct {
	seq uint64
	rec []byte
}

// Log is a single-writer write-ahead log rooted at a directory. All
// methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	f        *os.File // active segment, positioned at its end
	seq      uint64   // sequence of the last appended record
	snapSeq  uint64   // sequence covered by the newest snapshot (0 = none)
	snapshot []byte   // payload of the newest snapshot (nil = none)
	entries  []entry  // records with seq > snapSeq, oldest first
	faults   AppendFaults
	broken   bool // a durability write failed or Crash was called
	closed   bool
}

// Open opens (creating if needed) the log directory, validates its
// contents, truncates a torn tail if the last writer crashed
// mid-append, and leaves the log ready to append record seq+1.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	snaps, segs, err := listDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir}
	if err := l.loadSnapshot(snaps); err != nil {
		return nil, err
	}
	if err := l.loadSegments(segs); err != nil {
		return nil, err
	}
	if l.f == nil {
		// No usable segment: start a fresh one at the current seq.
		f, err := createSegment(dir, l.seq)
		if err != nil {
			return nil, err
		}
		l.f = f
	}
	return l, nil
}

type seqFile struct {
	seq  uint64
	name string
}

func listDir(dir string) (snaps, segs []seqFile, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		if n, ok := parseSeqName(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seqFile{seq: n, name: name})
		} else if n, ok := parseSeqName(name, "seg-", ".log"); ok {
			segs = append(segs, seqFile{seq: n, name: name})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return snaps, segs, nil
}

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func segName(seq uint64) string  { return fmt.Sprintf("seg-%020d.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%020d.snap", seq) }

// loadSnapshot installs the newest decodable snapshot. A snapshot
// torn by a crash mid-write never got renamed into place, so a .snap
// file failing to decode is unexpected — but we fall back to an older
// one rather than refuse to start.
func (l *Log) loadSnapshot(snaps []seqFile) error {
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(l.dir, snaps[i].name))
		if err != nil {
			continue
		}
		payload, n, ok := decodeFrame(data)
		if !ok || n != len(data) {
			continue
		}
		l.snapSeq = snaps[i].seq
		l.seq = snaps[i].seq
		l.snapshot = payload
		return nil
	}
	return nil
}

// loadSegments replays every record newer than the snapshot into
// memory, validates segment-chain contiguity, and opens the final
// segment for appending (truncating a torn tail first).
func (l *Log) loadSegments(segs []seqFile) error {
	scanning := false
	for i, sg := range segs {
		last := i == len(segs)-1
		if !scanning {
			// Skip segments the snapshot fully covers (prune leftovers
			// from a crash between snapshot rename and file removal).
			if !last && segs[i+1].seq <= l.snapSeq {
				continue
			}
			if sg.seq > l.snapSeq {
				return fmt.Errorf("%w: segment %s starts after snapshot seq %d", ErrCorrupt, sg.name, l.snapSeq)
			}
			scanning = true
			l.seq = sg.seq
		} else if sg.seq != l.seq {
			return fmt.Errorf("%w: segment %s does not continue from seq %d", ErrCorrupt, sg.name, l.seq)
		}
		path := filepath.Join(l.dir, sg.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", sg.name, err)
		}
		recs, validLen := scanRecords(data)
		if validLen < len(data) && !last {
			return fmt.Errorf("%w: invalid frame at %s offset %d", ErrCorrupt, sg.name, validLen)
		}
		for _, rec := range recs {
			l.seq++
			if l.seq > l.snapSeq {
				l.entries = append(l.entries, entry{seq: l.seq, rec: rec})
			}
		}
		if last {
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("wal: open %s: %w", sg.name, err)
			}
			if validLen < len(data) {
				// Torn tail: drop the partial frame so the next append
				// starts a clean record boundary.
				if err := f.Truncate(int64(validLen)); err != nil {
					_ = f.Close()
					return fmt.Errorf("wal: truncate torn tail of %s: %w", sg.name, err)
				}
				if err := f.Sync(); err != nil {
					_ = f.Close()
					return fmt.Errorf("wal: sync %s: %w", sg.name, err)
				}
			}
			if _, err := f.Seek(int64(validLen), 0); err != nil {
				_ = f.Close()
				return fmt.Errorf("wal: seek %s: %w", sg.name, err)
			}
			l.f = f
		}
	}
	return nil
}

// appendFrame encodes one record frame onto dst.
func appendFrame(dst, rec []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
	dst = append(dst, hdr[:]...)
	return append(dst, rec...)
}

// decodeFrame decodes one frame from the start of data, returning the
// payload, the bytes consumed, and whether the frame was valid.
func decodeFrame(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	size := binary.BigEndian.Uint32(data[0:4])
	if size > MaxRecordSize || int(size) > len(data)-frameHeader {
		return nil, 0, false
	}
	payload = data[frameHeader : frameHeader+int(size)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, 0, false
	}
	return append([]byte(nil), payload...), frameHeader + int(size), true
}

// scanRecords decodes consecutive frames from data, stopping at the
// first invalid one. validLen is the offset of the first byte not
// part of a valid frame (== len(data) when the whole file is clean).
func scanRecords(data []byte) (recs [][]byte, validLen int) {
	off := 0
	for off < len(data) {
		payload, n, ok := decodeFrame(data[off:])
		if !ok {
			break
		}
		recs = append(recs, payload)
		off += n
	}
	return recs, off
}

// SetFaults installs an append-fault injector (nil disables).
func (l *Log) SetFaults(f AppendFaults) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = f
}

// Append durably commits one record: the frame is written and fsync'd
// before Append returns. On any write or sync failure the log breaks
// permanently (ErrClosed thereafter) — a handle that cannot promise
// durability must not keep acknowledging.
func (l *Log) Append(rec []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken {
		return 0, ErrClosed
	}
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(rec))
	}
	frame := appendFrame(nil, rec)
	if l.faults != nil {
		if n, err := l.faults.BeforeAppend(frame); err != nil {
			if n > len(frame) {
				n = len(frame)
			}
			if n > 0 {
				_, _ = l.f.Write(frame[:n]) // the torn write the crash leaves behind
			}
			l.broken = true
			_ = l.f.Close()
			return 0, fmt.Errorf("wal: append fault: %w", err)
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.broken = true
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.broken = true
		return 0, fmt.Errorf("wal: append sync: %w", err)
	}
	l.seq++
	l.entries = append(l.entries, entry{seq: l.seq, rec: append([]byte(nil), rec...)})
	return l.seq, nil
}

// SaveSnapshot durably stores application state that reflects records
// 1..upTo, rotates to a fresh segment, and prunes files the snapshot
// covers. upTo is typically read from Seq() immediately *before*
// capturing the state; records appended during capture simply replay
// on top (the application's replay must be idempotent, which the
// NameNode's full-state records guarantee).
func (l *Log) SaveSnapshot(state []byte, upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken {
		return ErrClosed
	}
	if upTo > l.seq {
		return fmt.Errorf("wal: snapshot seq %d ahead of log seq %d", upTo, l.seq)
	}
	if upTo <= l.snapSeq {
		return nil // an older snapshot already covers this
	}
	if err := l.writeSnapshotFile(state, upTo); err != nil {
		return err
	}
	// Rotate: the next record (seq+1) opens a fresh segment, so the
	// prune below can retire everything the snapshot covers.
	if err := l.f.Sync(); err != nil {
		l.broken = true
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.broken = true
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	f, err := createSegment(l.dir, l.seq)
	if err != nil {
		l.broken = true
		return err
	}
	l.f = f
	l.snapSeq = upTo
	l.snapshot = append([]byte(nil), state...)
	for len(l.entries) > 0 && l.entries[0].seq <= upTo {
		l.entries = l.entries[1:]
	}
	l.prune()
	return nil
}

// writeSnapshotFile is the atomic snapshot commit: temp file, fsync,
// rename, directory fsync.
func (l *Log) writeSnapshotFile(state []byte, upTo uint64) error {
	final := filepath.Join(l.dir, snapName(upTo))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(appendFrame(nil, state)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: commit snapshot: %w", err)
	}
	return syncDir(l.dir)
}

// prune removes snapshots older than the current one and segments
// whose every record the current snapshot covers. Failures are
// ignored: leftovers are skipped on the next Open and retried on the
// next snapshot.
func (l *Log) prune() {
	snaps, segs, err := listDir(l.dir)
	if err != nil {
		return
	}
	for _, s := range snaps {
		if s.seq < l.snapSeq {
			_ = os.Remove(filepath.Join(l.dir, s.name))
		}
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq <= l.snapSeq {
			_ = os.Remove(filepath.Join(l.dir, segs[i].name))
		}
	}
}

func createSegment(dir string, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("wal: close dir: %w", err)
	}
	return nil
}

// Snapshot returns a copy of the newest snapshot payload and the
// sequence it covers (nil, 0 when none exists).
func (l *Log) Snapshot() ([]byte, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapshot == nil {
		return nil, l.snapSeq
	}
	return append([]byte(nil), l.snapshot...), l.snapSeq
}

// Replay invokes fn for every record newer than the snapshot, oldest
// first. fn runs without the log lock held; records appended
// concurrently with Replay may or may not be included.
func (l *Log) Replay(fn func(seq uint64, rec []byte) error) error {
	l.mu.Lock()
	entries := l.entries
	l.mu.Unlock()
	for _, e := range entries {
		if err := fn(e.seq, append([]byte(nil), e.rec...)); err != nil {
			return err
		}
	}
	return nil
}

// Seq returns the sequence number of the last committed record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SnapshotSeq returns the sequence the newest snapshot covers.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// RecordsSinceSnapshot reports how many committed records the newest
// snapshot does not cover — the replay cost of a crash right now.
func (l *Log) RecordsSinceSnapshot() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - l.snapSeq
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close cleanly shuts the log: final fsync, file closed, further
// appends rejected.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.broken {
		return nil // the breaking path already closed the file
	}
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("wal: close sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Crash abandons the log the way SIGKILL would: the file handle is
// closed without a final sync and every later Append fails with
// ErrClosed. Already-committed records are durable (Append fsyncs);
// in-flight handlers racing a simulated restart cannot write into the
// directory the new incarnation now owns.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken {
		return
	}
	l.broken = true
	_ = l.f.Close()
}

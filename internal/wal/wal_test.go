package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, l *Log) []string {
	t.Helper()
	var out []string
	err := l.Replay(func(seq uint64, rec []byte) error {
		out = append(out, fmt.Sprintf("%d:%s", seq, rec))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func appendN(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if _, err := l.Append([]byte(r)); err != nil {
			t.Fatalf("append %q: %v", r, err)
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyDirRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open empty dir: %v", err)
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("expected no records, got %v", got)
	}
	if l.Seq() != 0 {
		t.Fatalf("seq = %d, want 0", l.Seq())
	}
	if snap, seq := l.Snapshot(); snap != nil || seq != 0 {
		t.Fatalf("expected no snapshot, got %q at %d", snap, seq)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Opening again is still fine: an empty segment exists now.
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	appendN(t, l2, "a")
	if got := collect(t, l2); !equal(got, []string{"1:a"}) {
		t.Fatalf("got %v", got)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "create /a", "create /b", "delete /a")
	want := []string{"1:create /a", "2:create /b", "3:delete /a"}
	if got := collect(t, l); !equal(got, want) {
		t.Fatalf("live replay = %v, want %v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2); !equal(got, want) {
		t.Fatalf("recovered replay = %v, want %v", got, want)
	}
	if l2.Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3", l2.Seq())
	}
	// Appends continue the sequence after recovery.
	seq, err := l2.Append([]byte("create /c"))
	if err != nil || seq != 4 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

// TestDoubleReplayIdempotence: Replay is repeatable — two passes over
// the same log yield identical sequences, live and after reopen.
func TestDoubleReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "x", "y", "z")
	first := collect(t, l)
	second := collect(t, l)
	if !equal(first, second) {
		t.Fatalf("replays differ: %v vs %v", first, second)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); !equal(got, first) {
		t.Fatalf("post-reopen replay %v != live replay %v", got, first)
	}
}

func segPath(t *testing.T, dir string) string {
	t.Helper()
	_, segs, err := listDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("list segments: %v (%d found)", err, len(segs))
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "one", "two", "three")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop the last record's frame in
	// half.
	path := segPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tornAt := len(data) - (frameHeader+len("three"))/2
	if err := os.WriteFile(path, data[:tornAt], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	want := []string{"1:one", "2:two"}
	if got := collect(t, l2); !equal(got, want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
	// The torn record's slot is reused: the log stays contiguous.
	seq, err := l2.Append([]byte("three'"))
	if err != nil || seq != 3 {
		t.Fatalf("append after torn tail: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	want = []string{"1:one", "2:two", "3:three'"}
	if got := collect(t, l3); !equal(got, want) {
		t.Fatalf("final replay = %v, want %v", got, want)
	}
}

func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "aaaa", "bbbb", "cccc")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupting an interior record is only distinguishable from a
	// torn tail when the damage is in a non-final segment, so build
	// one: snapshot-free rotation isn't exposed, so instead corrupt
	// the snapshot chain — flip a byte inside the first record and
	// expect everything after the tear to be dropped (torn-tail rule),
	// then verify acknowledged-loss is at least detected via seq.
	path := segPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+1] ^= 0xFF // payload byte of record 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	// Within the final segment the first bad frame is the assumed
	// crash point; the log must not hallucinate records past it.
	if got := collect(t, l2); len(got) != 0 {
		t.Fatalf("replayed through corruption: %v", got)
	}
	if l2.Seq() != 0 {
		t.Fatalf("seq = %d, want 0", l2.Seq())
	}
}

func TestCorruptNonFinalSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "aaaa", "bbbb", "cccc", "dddd")
	// Snapshot *behind* the segment's last record: rotation creates a
	// second segment, but the first (records 1-4 > snapSeq 2) is not
	// prunable and stays in the replay chain.
	if err := l.SaveSnapshot([]byte("state@2"), 2); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "eeee", "ffff")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments after rotation, got %+v", segs)
	}
	first := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the third record of the non-final
	// segment: that is real corruption, not a torn tail, and Open
	// must refuse rather than drop acknowledged records 3-6.
	off := 2 * (frameHeader + len("aaaa"))
	data[off+frameHeader] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotAndPartialLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "r1", "r2", "r3")
	if err := l.SaveSnapshot([]byte("state@3"), 3); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	appendN(t, l, "r4", "r5")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	snap, seq := l2.Snapshot()
	if string(snap) != "state@3" || seq != 3 {
		t.Fatalf("snapshot = %q @ %d, want state@3 @ 3", snap, seq)
	}
	want := []string{"4:r4", "5:r5"}
	if got := collect(t, l2); !equal(got, want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
	if l2.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", l2.Seq())
	}
	// Tear the post-snapshot tail too: only r4 survives.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := collect(t, l3); !equal(got, []string{"4:r4"}) {
		t.Fatalf("replay after torn post-snapshot tail = %v", got)
	}
}

func TestSnapshotTruncatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appendN(t, l, fmt.Sprintf("rec-%d", i))
	}
	if err := l.SaveSnapshot([]byte("state@10"), 10); err != nil {
		t.Fatal(err)
	}
	if l.RecordsSinceSnapshot() != 0 {
		t.Fatalf("records since snapshot = %d, want 0", l.RecordsSinceSnapshot())
	}
	snaps, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %d, want 1", len(snaps))
	}
	// Only the fresh (empty) active segment should remain.
	if len(segs) != 1 || segs[0].seq != 10 {
		t.Fatalf("segments = %+v, want single seg at 10", segs)
	}
	// A second snapshot at an older seq is a no-op, not a regression.
	if err := l.SaveSnapshot([]byte("stale"), 5); err != nil {
		t.Fatal(err)
	}
	if snap, seq := l.Snapshot(); string(snap) != "state@10" || seq != 10 {
		t.Fatalf("snapshot regressed to %q @ %d", snap, seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

type crashAfter struct {
	n         int // appends to allow before crashing
	tornBytes int // bytes of the fatal frame to leave on disk
}

func (c *crashAfter) BeforeAppend(frame []byte) (int, error) {
	if c.n > 0 {
		c.n--
		return len(frame), nil
	}
	return c.tornBytes, errors.New("injected crash")
}

func TestAppendFaultTearsAndBreaks(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.SetFaults(&crashAfter{n: 2, tornBytes: 5})
	appendN(t, l, "ok-1", "ok-2")
	if _, err := l.Append([]byte("never-acked")); err == nil {
		t.Fatal("expected injected crash")
	}
	// The handle is dead now.
	if _, err := l.Append([]byte("more")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on broken log = %v, want ErrClosed", err)
	}
	// Recovery sees the two acknowledged records; the torn 5-byte
	// prefix of the third is discarded.
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("recover after fault: %v", err)
	}
	defer l2.Close()
	want := []string{"1:ok-1", "2:ok-2"}
	if got := collect(t, l2); !equal(got, want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
}

func TestCrashAbandonsHandle(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "acked")
	l.Crash()
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after crash = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); !equal(got, []string{"1:acked"}) {
		t.Fatalf("replay = %v", got)
	}
}

func TestSnapshotUpToBehindConcurrentAppends(t *testing.T) {
	// The snapshot cadence reads Seq() *before* capturing state; any
	// records committed in between stay in the replay suffix.
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, "a", "b")
	upTo := l.Seq()
	appendN(t, l, "c") // races the state capture in real usage
	if err := l.SaveSnapshot([]byte("state@2"), upTo); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); !equal(got, []string{"3:c"}) {
		t.Fatalf("replay suffix = %v, want [3:c]", got)
	}
}

func TestBinaryRecordsSurvive(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 4096)
	for i := range rec {
		rec[i] = byte(i * 31)
	}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []byte
	if err := l2.Replay(func(_ uint64, r []byte) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Fatal("binary record mangled by round trip")
	}
}

// Package workload provides the benchmark applications the paper's
// evaluation runs — primarily Terasort (§V-A) — plus WordCount and
// Grep as additional realistic MapReduce workloads for the examples
// and tests. All generators are deterministic under a seed.
package workload

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/adaptsim/adapt/internal/mapreduce"
	"github.com/adaptsim/adapt/internal/stats"
)

// Terasort record geometry: 100-byte records with a 10-byte printable
// key, mirroring the Hadoop terasort package the paper benchmarks.
const (
	TeraKeyLen    = 10
	TeraRecordLen = 100
)

// teraAlphabet is the printable key alphabet.
const teraAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// TeraGen produces n 100-byte records with uniformly random 10-byte
// printable keys, each record newline-terminated ("key rowid filler").
func TeraGen(n int, g *stats.RNG) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: record count must be non-negative, got %d", n)
	}
	if g == nil {
		return nil, errors.New("workload: rng must not be nil")
	}
	var buf bytes.Buffer
	buf.Grow(n * TeraRecordLen)
	// layout: key(10) + ' ' + rowid(10) + ' ' + filler + '\n' = 100
	filler := strings.Repeat("X", TeraRecordLen-TeraKeyLen-1-10-1-1)
	for i := 0; i < n; i++ {
		for k := 0; k < TeraKeyLen; k++ {
			buf.WriteByte(teraAlphabet[g.IntN(len(teraAlphabet))])
		}
		buf.WriteByte(' ')
		// zero-padded row id keeps records fixed-width
		fmt.Fprintf(&buf, "%010d", i)
		buf.WriteByte(' ')
		buf.WriteString(filler)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// TeraKeys extracts the keys of a terasort data set in order.
func TeraKeys(data []byte) []string {
	var keys []string
	for off := 0; off+TeraRecordLen <= len(data); off += TeraRecordLen {
		keys = append(keys, string(data[off:off+TeraKeyLen]))
	}
	return keys
}

// teraMapper emits (key, record) per 100-byte record.
type teraMapper struct{}

// Map implements mapreduce.Mapper.
func (teraMapper) Map(block []byte, emit func(key string, value []byte)) error {
	for off := 0; off+TeraRecordLen <= len(block); off += TeraRecordLen {
		rec := block[off : off+TeraRecordLen]
		emit(string(rec[:TeraKeyLen]), rec[:TeraRecordLen-1]) // drop trailing newline
	}
	return nil
}

// teraReducer re-emits records; the framework's per-partition key sort
// plus the range partitioner yields a globally sorted output.
type teraReducer struct{}

// Reduce implements mapreduce.Reducer.
func (teraReducer) Reduce(key string, values [][]byte, emit func(key string, value []byte)) error {
	for _, v := range values {
		emit(key, v)
	}
	return nil
}

// RangePartitioner buckets keys by sorted boundary keys so that the
// concatenation of reduce outputs is globally ordered — the terasort
// trick.
func RangePartitioner(boundaries []string) mapreduce.Partitioner {
	bs := make([]string, len(boundaries))
	copy(bs, boundaries)
	sort.Strings(bs)
	return func(key string, n int) int {
		idx := sort.SearchStrings(bs, key)
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
}

// SampleBoundaries draws sample keys from the data and returns n-1
// boundary keys for n partitions (terasort's input sampler).
func SampleBoundaries(data []byte, parts, samples int, g *stats.RNG) ([]string, error) {
	if parts < 1 {
		return nil, fmt.Errorf("workload: need at least one partition, got %d", parts)
	}
	if parts == 1 {
		return nil, nil
	}
	keys := TeraKeys(data)
	if len(keys) == 0 {
		return nil, errors.New("workload: cannot sample an empty data set")
	}
	if samples <= 0 {
		samples = 100 * parts
	}
	picked := make([]string, 0, samples)
	for i := 0; i < samples; i++ {
		picked = append(picked, keys[g.IntN(len(keys))])
	}
	sort.Strings(picked)
	out := make([]string, 0, parts-1)
	for i := 1; i < parts; i++ {
		out = append(out, picked[i*len(picked)/parts])
	}
	return out, nil
}

// TeraSortJob assembles the terasort job over dfs input/output names.
// boundaries must have reducers-1 entries (from SampleBoundaries) or
// be nil when reducers == 1.
func TeraSortJob(input, output string, reducers int, boundaries []string) (mapreduce.Job, error) {
	if reducers < 1 {
		return mapreduce.Job{}, fmt.Errorf("workload: terasort needs >= 1 reducers, got %d", reducers)
	}
	if len(boundaries) != reducers-1 {
		return mapreduce.Job{}, fmt.Errorf("workload: terasort with %d reducers needs %d boundaries, got %d",
			reducers, reducers-1, len(boundaries))
	}
	var part mapreduce.Partitioner
	if reducers > 1 {
		part = RangePartitioner(boundaries)
	}
	return mapreduce.Job{
		Name:      "terasort",
		Input:     input,
		Output:    output,
		Mapper:    teraMapper{},
		Reducer:   teraReducer{},
		Reducers:  reducers,
		Partition: part,
	}, nil
}

// CheckSorted verifies that the concatenated reduce outputs are in
// non-decreasing key order and contain the expected record count.
func CheckSorted(parts [][]byte, wantRecords int) error {
	records := 0
	prev := ""
	for pi, part := range parts {
		for _, line := range bytes.Split(part, []byte{'\n'}) {
			if len(line) == 0 {
				continue
			}
			tab := bytes.IndexByte(line, '\t')
			if tab < 0 {
				return fmt.Errorf("workload: malformed output line %q", line)
			}
			key := string(line[:tab])
			if key < prev {
				return fmt.Errorf("workload: part %d: key %q < previous %q", pi, key, prev)
			}
			prev = key
			records++
		}
	}
	if records != wantRecords {
		return fmt.Errorf("workload: output has %d records, want %d", records, wantRecords)
	}
	return nil
}

// WordCountJob counts whitespace-separated words.
func WordCountJob(input, output string, reducers int) mapreduce.Job {
	return mapreduce.Job{
		Name:   "wordcount",
		Input:  input,
		Output: output,
		Mapper: mapreduce.MapperFunc(func(block []byte, emit func(string, []byte)) error {
			for _, w := range strings.Fields(string(block)) {
				emit(w, []byte("1"))
			}
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, emit func(string, []byte)) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return fmt.Errorf("workload: wordcount value %q: %w", v, err)
				}
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
			return nil
		}),
		Reducers: reducers,
	}
}

// GrepJob emits every newline-terminated line containing the pattern
// (map-only).
func GrepJob(input, output, pattern string) mapreduce.Job {
	return mapreduce.Job{
		Name:   "grep",
		Input:  input,
		Output: output,
		Mapper: mapreduce.MapperFunc(func(block []byte, emit func(string, []byte)) error {
			for _, line := range bytes.Split(block, []byte{'\n'}) {
				if len(line) > 0 && bytes.Contains(line, []byte(pattern)) {
					emit(string(line), nil)
				}
			}
			return nil
		}),
		Reducers: 1,
	}
}

// ParseCounts parses wordcount output ("word\tcount" lines) into a
// map.
func ParseCounts(part []byte) (map[string]int, error) {
	out := make(map[string]int)
	for _, line := range bytes.Split(part, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		tab := bytes.IndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("workload: malformed count line %q", line)
		}
		n, err := strconv.Atoi(string(line[tab+1:]))
		if err != nil {
			return nil, fmt.Errorf("workload: count line %q: %w", line, err)
		}
		out[string(line[:tab])] = n
	}
	return out, nil
}

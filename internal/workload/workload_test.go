package workload

import (
	"bytes"
	"testing"

	"github.com/adaptsim/adapt/internal/cluster"
	"github.com/adaptsim/adapt/internal/dfs"
	"github.com/adaptsim/adapt/internal/mapreduce"
	"github.com/adaptsim/adapt/internal/stats"
)

func TestTeraGenShape(t *testing.T) {
	g := stats.NewRNG(1)
	data, err := TeraGen(50, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 50*TeraRecordLen {
		t.Fatalf("len = %d", len(data))
	}
	keys := TeraKeys(data)
	if len(keys) != 50 {
		t.Fatalf("keys = %d", len(keys))
	}
	for _, k := range keys {
		if len(k) != TeraKeyLen {
			t.Fatalf("key %q wrong length", k)
		}
	}
	// Records newline-terminated.
	if data[TeraRecordLen-1] != '\n' {
		t.Fatal("record not newline-terminated")
	}
}

func TestTeraGenDeterministic(t *testing.T) {
	a, err := TeraGen(20, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TeraGen(20, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("teragen not deterministic")
	}
}

func TestTeraGenValidation(t *testing.T) {
	if _, err := TeraGen(-1, stats.NewRNG(1)); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := TeraGen(1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRangePartitioner(t *testing.T) {
	part := RangePartitioner([]string{"g", "p"})
	cases := map[string]int{"a": 0, "f": 0, "g": 0, "h": 1, "o": 1, "p": 1, "q": 2, "z": 2}
	for key, want := range cases {
		if got := part(key, 3); got != want {
			t.Errorf("part(%q) = %d, want %d", key, got, want)
		}
	}
}

func TestSampleBoundaries(t *testing.T) {
	g := stats.NewRNG(2)
	data, err := TeraGen(500, g)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := SampleBoundaries(data, 4, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("boundaries = %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] < bs[i-1] {
			t.Fatalf("boundaries unsorted: %v", bs)
		}
	}
	if one, err := SampleBoundaries(data, 1, 0, g); err != nil || one != nil {
		t.Fatalf("single partition: %v %v", one, err)
	}
	if _, err := SampleBoundaries(nil, 3, 0, g); err == nil {
		t.Fatal("empty data accepted")
	}
}

// End-to-end terasort on a heterogeneous cluster with interruptions:
// output must be globally sorted and complete.
func TestTeraSortEndToEnd(t *testing.T) {
	c, err := cluster.NewEmulation(cluster.EmulationConfig{Nodes: 8, InterruptedRatio: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := dfs.NewNameNode(c)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dfs.NewClient(nn, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(4)
	records := 400
	data, err := TeraGen(records, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.BlockSize = 50 * TeraRecordLen // 8 blocks, record-aligned
	if _, err := cl.CopyFromLocal("tera/in", data, true); err != nil {
		t.Fatal(err)
	}

	reducers := 4
	bounds, err := SampleBoundaries(data, reducers, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	job, err := TeraSortJob("tera/in", "tera/out", reducers, bounds)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(nn, mapreduce.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(job, g)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]byte, 0, len(res.OutputFiles))
	for _, f := range res.OutputFiles {
		data, err := nn.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, data)
	}
	if err := CheckSorted(parts, records); err != nil {
		t.Fatal(err)
	}
	if res.Map.TotalTasks != 8 {
		t.Fatalf("map tasks = %d, want 8", res.Map.TotalTasks)
	}
}

func TestTeraSortJobValidation(t *testing.T) {
	if _, err := TeraSortJob("i", "o", 0, nil); err == nil {
		t.Fatal("zero reducers accepted")
	}
	if _, err := TeraSortJob("i", "o", 3, []string{"a"}); err == nil {
		t.Fatal("wrong boundary count accepted")
	}
	if _, err := TeraSortJob("i", "o", 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSortedRejects(t *testing.T) {
	unsorted := [][]byte{[]byte("b\tx\na\ty\n")}
	if err := CheckSorted(unsorted, 2); err == nil {
		t.Fatal("unsorted output accepted")
	}
	short := [][]byte{[]byte("a\tx\n")}
	if err := CheckSorted(short, 2); err == nil {
		t.Fatal("short output accepted")
	}
	malformed := [][]byte{[]byte("nokey\n")}
	if err := CheckSorted(malformed, 1); err == nil {
		t.Fatal("malformed output accepted")
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	c, err := cluster.NewEmulation(cluster.EmulationConfig{Nodes: 4, InterruptedRatio: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := dfs.NewNameNode(c)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dfs.NewClient(nn, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// 8-byte aligned tokens so block boundaries never split a word.
	data := bytes.Repeat([]byte("foo bar "), 64) // 512 bytes
	cl.BlockSize = 64
	if _, err := cl.CopyFromLocal("wc/in", data, false); err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(nn, mapreduce.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WordCountJob("wc/in", "wc/out", 1), stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	out, err := nn.ReadFile(res.OutputFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ParseCounts(out)
	if err != nil {
		t.Fatal(err)
	}
	if counts["foo"] != 64 || counts["bar"] != 64 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestGrepEndToEnd(t *testing.T) {
	c, err := cluster.NewEmulation(cluster.EmulationConfig{Nodes: 4, InterruptedRatio: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := dfs.NewNameNode(c)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dfs.NewClient(nn, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// 16-byte lines; block size 64.
	var in bytes.Buffer
	for i := 0; i < 32; i++ {
		if i%4 == 0 {
			in.WriteString("needle-here-row\n")
		} else {
			in.WriteString("haystack-rowxxx\n")
		}
	}
	cl.BlockSize = 64
	if _, err := cl.CopyFromLocal("g/in", in.Bytes(), false); err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(nn, mapreduce.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(GrepJob("g/in", "g/out", "needle"), stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	out, err := nn.ReadFile(res.OutputFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	got := bytes.Count(out, []byte{'\n'})
	if got != 8 {
		t.Fatalf("grep matched %d lines, want 8", got)
	}
}

func TestParseCountsMalformed(t *testing.T) {
	if _, err := ParseCounts([]byte("bad-line\n")); err == nil {
		t.Fatal("malformed accepted")
	}
	if _, err := ParseCounts([]byte("a\tnotanumber\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

#!/usr/bin/env bash
# crash-smoke: end-to-end durability proof for the networked cluster.
#
# Boots two real DataNode daemons and a durable NameNode (-wal-dir) on
# loopback TCP, writes a file, kill -9's the NameNode, restarts it
# from the same WAL directory, and requires that (a) the file reads
# back byte-identical and (b) fsck reports the namespace fully
# replicated (exit 0). This is the shell-level twin of the
# TestCrashRecoverySoak unit test — same binary an operator runs.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
WAL="$WORK/wal"
BIN="$WORK/adapt-fs"
NN_ADDR="127.0.0.1:29870"
DN0_ADDR="127.0.0.1:29864"
DN1_ADDR="127.0.0.1:29865"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "crash-smoke: $*"; }

wait_ready() { # wait_ready NAME -- CMD...: retry CMD until it succeeds
  local name="$1"; shift
  for _ in $(seq 1 50); do
    if "$@" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  say "$name never became ready"
  return 1
}

go build -o "$BIN" ./cmd/adapt-fs
say "built $BIN"

"$BIN" serve-datanode -id 0 -listen "$DN0_ADDR" -namenode "$NN_ADDR" -heartbeat 300ms &
PIDS+=($!)
"$BIN" serve-datanode -id 1 -listen "$DN1_ADDR" -namenode "$NN_ADDR" -heartbeat 300ms &
PIDS+=($!)

start_namenode() {
  "$BIN" serve-namenode -listen "$NN_ADDR" -datanodes "$DN0_ADDR,$DN1_ADDR" \
    -replicas 2 -block-size 1024 -wal-dir "$WAL" &
  NN_PID=$!
  PIDS+=($NN_PID)
  wait_ready "namenode" "$BIN" ls -namenode "$NN_ADDR"
}

start_namenode
say "cluster up (namenode pid $NN_PID, wal dir $WAL)"

head -c 16384 /dev/urandom > "$WORK/payload.bin"
"$BIN" put -namenode "$NN_ADDR" -adapt "$WORK/payload.bin" /data
"$BIN" get -namenode "$NN_ADDR" /data "$WORK/before.bin"
cmp "$WORK/payload.bin" "$WORK/before.bin"
say "wrote and verified /data (16 KiB, replication 2)"

say "kill -9 namenode (pid $NN_PID)"
kill -9 "$NN_PID"
wait "$NN_PID" 2>/dev/null || true

start_namenode
say "namenode restarted from WAL (pid $NN_PID)"

"$BIN" get -namenode "$NN_ADDR" /data "$WORK/after.bin"
cmp "$WORK/payload.bin" "$WORK/after.bin"
say "acknowledged write survived the crash byte-for-byte"

# Heartbeats re-establish liveness; fsck must then report full health.
wait_ready "post-crash fsck" "$BIN" fsck -namenode "$NN_ADDR"
"$BIN" fsck -namenode "$NN_ADDR"
say "fsck clean after recovery — PASS"

#!/usr/bin/env bash
# crash-smoke: end-to-end durability proof for the networked cluster.
#
# Boots two real DataNode daemons and a durable NameNode (-wal-dir) on
# loopback TCP, writes a file, kill -9's the NameNode, restarts it
# from the same WAL directory, and requires that (a) the file reads
# back byte-identical and (b) fsck reports the namespace fully
# replicated (exit 0). This is the shell-level twin of the
# TestCrashRecoverySoak unit test — same binary an operator runs.
#
# The cycle runs twice: once against the flat single-shard WAL layout
# and once with -shards 4 (per-shard journal directories, the write
# tenant-prefixed so quota accounting is on the recovered path), the
# twin of TestShardedCrashRecoverySoak. A final probe restarts the
# sharded WAL with the wrong -shards value and requires the NameNode
# to refuse: resharding an existing directory must never silently
# rehash the namespace.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
BIN="$WORK/adapt-fs"
NN_ADDR="127.0.0.1:29870"
DN0_ADDR="127.0.0.1:29864"
DN1_ADDR="127.0.0.1:29865"
PIDS=()
NN_PID=""

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "crash-smoke: $*"; }

wait_ready() { # wait_ready NAME -- CMD...: retry CMD until it succeeds
  local name="$1"; shift
  for _ in $(seq 1 50); do
    if "$@" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  say "$name never became ready"
  return 1
}

go build -o "$BIN" ./cmd/adapt-fs
say "built $BIN"

"$BIN" serve-datanode -id 0 -listen "$DN0_ADDR" -namenode "$NN_ADDR" -heartbeat 300ms &
PIDS+=($!)
"$BIN" serve-datanode -id 1 -listen "$DN1_ADDR" -namenode "$NN_ADDR" -heartbeat 300ms &
PIDS+=($!)

start_namenode() { # start_namenode WAL_DIR SHARDS
  "$BIN" serve-namenode -listen "$NN_ADDR" -datanodes "$DN0_ADDR,$DN1_ADDR" \
    -replicas 2 -block-size 1024 -wal-dir "$1" -shards "$2" &
  NN_PID=$!
  PIDS+=($NN_PID)
  wait_ready "namenode" "$BIN" ls -namenode "$NN_ADDR"
}

stop_namenode() {
  kill -9 "$NN_PID"
  wait "$NN_PID" 2>/dev/null || true
}

crash_cycle() { # crash_cycle WAL_DIR SHARDS TENANT_FLAGS...
  local wal="$1" shards="$2"
  shift 2

  start_namenode "$wal" "$shards"
  say "cluster up, shards=$shards (namenode pid $NN_PID, wal dir $wal)"

  head -c 16384 /dev/urandom > "$WORK/payload.bin"
  "$BIN" put -namenode "$NN_ADDR" -adapt "$@" "$WORK/payload.bin" /data
  "$BIN" get -namenode "$NN_ADDR" "$@" /data "$WORK/before.bin"
  cmp "$WORK/payload.bin" "$WORK/before.bin"
  say "wrote and verified /data (16 KiB, replication 2)"

  say "kill -9 namenode (pid $NN_PID)"
  stop_namenode

  start_namenode "$wal" "$shards"
  say "namenode restarted from WAL (pid $NN_PID)"

  "$BIN" get -namenode "$NN_ADDR" "$@" /data "$WORK/after.bin"
  cmp "$WORK/payload.bin" "$WORK/after.bin"
  say "acknowledged write survived the crash byte-for-byte"

  # Heartbeats re-establish liveness; fsck must then report full health.
  wait_ready "post-crash fsck" "$BIN" fsck -namenode "$NN_ADDR"
  "$BIN" fsck -namenode "$NN_ADDR"
  say "fsck clean after recovery (shards=$shards)"
  stop_namenode
}

crash_cycle "$WORK/wal-flat" 1

crash_cycle "$WORK/wal-sharded" 4 -tenant acme
if [ ! -f "$WORK/wal-sharded/SHARDS" ] || [ ! -d "$WORK/wal-sharded/shard-003" ]; then
  say "sharded WAL layout missing SHARDS manifest or shard-003 directory"
  exit 1
fi
say "sharded WAL layout verified (SHARDS manifest + per-shard directories)"

# Resharding must be refused, not silently rehashed.
set +e
timeout 10 "$BIN" serve-namenode -listen "$NN_ADDR" -datanodes "$DN0_ADDR,$DN1_ADDR" \
  -replicas 2 -block-size 1024 -wal-dir "$WORK/wal-sharded" -shards 8 2> "$WORK/reshard.err"
rc=$?
set -e
if [ "$rc" -eq 0 ] || [ "$rc" -eq 124 ]; then
  say "namenode accepted -shards 8 over a 4-shard WAL (rc=$rc) — FAIL"
  exit 1
fi
grep -qi "shard" "$WORK/reshard.err"
say "reshard attempt correctly refused: $(cat "$WORK/reshard.err")"
say "PASS"
